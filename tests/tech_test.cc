/**
 * @file
 * Tests for the technology models: Eq. 5 fits, Eq. 3/4 analytic
 * energy, Eq. 6/7 gating optimum, area scaling, and the headline
 * ratios of the abstract (the calibration contract of this
 * reproduction).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rl/bio/alphabet.h"
#include "rl/core/generalized.h"
#include "rl/tech/area_model.h"
#include "rl/tech/cell_library.h"
#include "rl/tech/energy_model.h"
#include "rl/tech/metrics.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using tech::CellLibrary;
using tech::ClockMode;
using tech::RaceCase;

// ------------------------------------------------------------- areas

TEST(AreaModel, RaceGridIsQuadratic)
{
    const CellLibrary &lib = CellLibrary::amis();
    auto a20 = tech::raceGridArea(lib, 20, 20, 2);
    auto a40 = tech::raceGridArea(lib, 40, 40, 2);
    EXPECT_EQ(a20.units, 400u);
    EXPECT_EQ(a40.units, 1600u);
    double ratio = a40.totalUm2 / a20.totalUm2;
    EXPECT_NEAR(ratio, 4.0, 0.2);
}

TEST(AreaModel, SystolicIsLinear)
{
    const CellLibrary &lib = CellLibrary::amis();
    auto a20 = tech::systolicArea(lib, Alphabet::dna(), 20, 20);
    auto a40 = tech::systolicArea(lib, Alphabet::dna(), 40, 40);
    EXPECT_EQ(a20.units, 41u);
    EXPECT_EQ(a40.units, 81u);
    EXPECT_NEAR(a40.totalUm2 / a20.totalUm2, 2.0, 0.15);
}

TEST(AreaModel, RaceCellIsMuchSmallerThanPe)
{
    // "the constants associated with Race Logic are smaller ... due
    // to the simplicity of the fundamental cells".
    const CellLibrary &lib = CellLibrary::amis();
    auto race = tech::raceGridArea(lib, 10, 10, 2);
    auto sys = tech::systolicArea(lib, Alphabet::dna(), 10, 10);
    EXPECT_GT(sys.unitAreaUm2, 3.0 * race.unitAreaUm2);
}

TEST(AreaModel, AreaCrossoverAtSmallN)
{
    // Fig. 5a/5d: quadratic-vs-linear crossover lands at small N.
    const CellLibrary &lib = CellLibrary::amis();
    size_t crossover = 0;
    for (size_t n = 2; n <= 60; ++n) {
        double race = tech::raceGridArea(lib, n, n, 2).totalUm2;
        double sys =
            tech::systolicArea(lib, Alphabet::dna(), n, n).totalUm2;
        if (race > sys) {
            crossover = n;
            break;
        }
    }
    EXPECT_GE(crossover, 5u);
    EXPECT_LE(crossover, 25u);
}

TEST(AreaModel, OsuCellsAreLarger)
{
    auto amis = tech::raceGridArea(CellLibrary::amis(), 10, 10, 2);
    auto osu = tech::raceGridArea(CellLibrary::osu(), 10, 10, 2);
    EXPECT_GT(osu.totalUm2, amis.totalUm2);
}

TEST(AreaModel, GeneralizedCellGrowsWithDynamicRange)
{
    const CellLibrary &lib = CellLibrary::amis();
    bio::ScoreMatrix small_m(Alphabet::dna(), bio::ScoreKind::Cost);
    bio::ScoreMatrix large_m(Alphabet::dna(), bio::ScoreKind::Cost);
    for (bio::Symbol s = 0; s < 4; ++s) {
        small_m.setGap(s, 2);
        large_m.setGap(s, 40);
        for (bio::Symbol t = 0; t < 4; ++t) {
            small_m.setPair(s, t, s == t ? 1 : 3);
            large_m.setPair(s, t, s == t ? 1 : 60);
        }
    }
    auto inv_small = core::GeneralizedGridCircuit::cellInventory(
        small_m, core::DelayEncoding::OneHot);
    auto inv_large = core::GeneralizedGridCircuit::cellInventory(
        large_m, core::DelayEncoding::OneHot);
    EXPECT_GT(lib.areaOfInventory(inv_large),
              2.0 * lib.areaOfInventory(inv_small));
}

// ---------------------------------------------------------- latency

TEST(Latency, CornersAndRatio)
{
    EXPECT_EQ(tech::raceLatencyCycles(20, RaceCase::Best), 20u);
    EXPECT_EQ(tech::raceLatencyCycles(20, RaceCase::Worst), 40u);
}

// ------------------------------------------------------- Eq. 5 fits

TEST(PaperFit, CoefficientsAsPublished)
{
    const CellLibrary &amis = CellLibrary::amis();
    const CellLibrary &osu = CellLibrary::osu();
    // Eq. 5a: 2.65 N^3 + 6.41 N^2 at N = 10 -> 3291 pJ.
    EXPECT_NEAR(tech::paperFitEnergyPj(amis, RaceCase::Worst, 10),
                2650.0 + 641.0, 1e-6);
    EXPECT_NEAR(tech::paperFitEnergyPj(amis, RaceCase::Best, 10),
                1050.0 + 591.0, 1e-6);
    EXPECT_NEAR(tech::paperFitEnergyPj(osu, RaceCase::Worst, 10),
                5300.0 + 376.0, 1e-6);
    EXPECT_NEAR(tech::paperFitEnergyPj(osu, RaceCase::Best, 10),
                2100.0 + 486.0, 1e-6);
}

TEST(AnalyticEnergy, ClockTermReproducesEq5CubicCoefficient)
{
    // The calibration contract: the analytic worst-case clock term
    // equals 2.65 pJ * N^3 (AMIS) and 5.30 pJ * N^3 (OSU).
    for (const CellLibrary *lib : CellLibrary::all()) {
        double expected_coeff = lib->name == "AMIS" ? 2.65 : 5.30;
        for (size_t n : {10u, 20u, 50u}) {
            auto e = tech::raceAnalyticEnergy(*lib, n, RaceCase::Worst);
            double coeff = e.clockJ / (double(n) * n * n) * 1e12;
            EXPECT_NEAR(coeff, expected_coeff, 0.01)
                << lib->name << " N=" << n;
        }
    }
}

TEST(AnalyticEnergy, TracksPaperFitWithinTolerance)
{
    // Eq. 4 with our capacitances should stay within ~35% of the
    // published Eq. 5 fits across the plotted range (the paper's own
    // best-case fit is not exactly half its worst-case fit, so exact
    // agreement is impossible).
    const CellLibrary &amis = CellLibrary::amis();
    for (size_t n = 10; n <= 100; n += 10) {
        for (RaceCase which : {RaceCase::Best, RaceCase::Worst}) {
            double model =
                tech::raceAnalyticEnergy(amis, n, which).totalJ() * 1e12;
            double fit = tech::paperFitEnergyPj(amis, which, double(n));
            EXPECT_NEAR(model / fit, 1.0, 0.35)
                << "N=" << n
                << " case=" << (which == RaceCase::Best ? "best"
                                                        : "worst");
        }
    }
}

TEST(AnalyticEnergy, CaseAndModeOrdering)
{
    const CellLibrary &lib = CellLibrary::amis();
    for (size_t n : {10u, 30u, 80u}) {
        double worst =
            tech::raceAnalyticEnergy(lib, n, RaceCase::Worst).totalJ();
        double best =
            tech::raceAnalyticEnergy(lib, n, RaceCase::Best).totalJ();
        double gated =
            tech::raceAnalyticEnergy(lib, n, RaceCase::Worst,
                                     ClockMode::Gated)
                .totalJ();
        double clockless =
            tech::raceAnalyticEnergy(lib, n, RaceCase::Worst,
                                     ClockMode::Clockless)
                .totalJ();
        EXPECT_LT(best, worst);
        EXPECT_LT(gated, worst);
        EXPECT_LT(clockless, gated);
    }
}

TEST(AnalyticEnergy, UngatedScalesCubically)
{
    const CellLibrary &lib = CellLibrary::amis();
    double e100 =
        tech::raceAnalyticEnergy(lib, 100, RaceCase::Worst).totalJ();
    double e1000 =
        tech::raceAnalyticEnergy(lib, 1000, RaceCase::Worst).totalJ();
    EXPECT_NEAR(e1000 / e100, 1000.0, 150.0);
}

TEST(AnalyticEnergy, ClocklessScalesQuadratically)
{
    const CellLibrary &lib = CellLibrary::amis();
    double e100 = tech::raceAnalyticEnergy(lib, 100, RaceCase::Worst,
                                           ClockMode::Clockless)
                      .totalJ();
    double e1000 = tech::raceAnalyticEnergy(lib, 1000, RaceCase::Worst,
                                            ClockMode::Clockless)
                       .totalJ();
    EXPECT_NEAR(e1000 / e100, 100.0, 1.0);
}

// ----------------------------------------------------- Eq. 6/7 gating

class GatingOptimum : public ::testing::TestWithParam<size_t> {};

TEST_P(GatingOptimum, ClosedFormMatchesNumericArgmin)
{
    size_t n = GetParam();
    const CellLibrary &lib = CellLibrary::amis();
    double closed = tech::optimalGatingGranularity(lib, n);
    size_t numeric = tech::numericOptimalGranularity(lib, n);
    // The discrete argmin sits next to the continuous optimum.
    EXPECT_NEAR(double(numeric), closed, 1.01)
        << "N=" << n << " closed=" << closed;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GatingOptimum,
                         ::testing::Values(8, 16, 32, 64, 128, 256,
                                           512, 1024));

TEST(GatingOptimum, GrowsAsCubeRootOfN)
{
    const CellLibrary &lib = CellLibrary::amis();
    double m64 = tech::optimalGatingGranularity(lib, 64);
    double m512 = tech::optimalGatingGranularity(lib, 512);
    EXPECT_NEAR(m512 / m64, std::cbrt(512.0 / 64.0), 0.05);
}

TEST(GatingOptimum, GatedBeatsUngatedBeyondTinyN)
{
    const CellLibrary &lib = CellLibrary::amis();
    for (size_t n : {16u, 64u, 256u}) {
        double gated = tech::raceAnalyticEnergy(lib, n, RaceCase::Worst,
                                                ClockMode::Gated)
                           .totalJ();
        double ungated =
            tech::raceAnalyticEnergy(lib, n, RaceCase::Worst).totalJ();
        EXPECT_LT(gated, ungated) << "N=" << n;
    }
}

TEST(GatingOptimum, GatedScalesBetweenSquareAndCube)
{
    const CellLibrary &lib = CellLibrary::amis();
    double e1 = tech::raceAnalyticEnergy(lib, 100, RaceCase::Worst,
                                         ClockMode::Gated)
                    .totalJ();
    double e2 = tech::raceAnalyticEnergy(lib, 1000, RaceCase::Worst,
                                         ClockMode::Gated)
                    .totalJ();
    double exponent = std::log10(e2 / e1);
    EXPECT_GT(exponent, 2.0);
    EXPECT_LT(exponent, 3.0);
}

// --------------------------------------------------- headline ratios

TEST(Headline, LatencyAdvantageIsAboutFourX)
{
    // Abstract: "synchronous Race Logic is up to 4x faster".
    const CellLibrary &lib = CellLibrary::amis();
    auto race = tech::raceDesignPoint(lib, 20, RaceCase::Worst);
    auto sys = tech::systolicDesignPoint(lib, 20);
    double ratio = sys.latencyNs / race.latencyNs;
    EXPECT_GT(ratio, 3.3);
    EXPECT_LT(ratio, 4.8);
}

TEST(Headline, ThroughputPerAreaIsAboutThreeX)
{
    // Abstract: "throughput ... per circuit area is about 3x higher
    // ... for 20-long-symbol DNA sequences".
    const CellLibrary &lib = CellLibrary::amis();
    auto race = tech::raceDesignPoint(lib, 20, RaceCase::Best);
    auto sys = tech::systolicDesignPoint(lib, 20);
    double ratio = race.throughputPerSecPerCm2() /
                   sys.throughputPerSecPerCm2();
    EXPECT_GT(ratio, 2.2);
    EXPECT_LT(ratio, 4.5);
}

TEST(Headline, PowerDensityIsAboutFiveXLower)
{
    // Abstract: "5x lower power density".
    const CellLibrary &lib = CellLibrary::amis();
    auto race = tech::raceDesignPoint(lib, 20, RaceCase::Worst);
    auto sys = tech::systolicDesignPoint(lib, 20);
    double ratio = sys.powerDensityWPerCm2() /
                   race.powerDensityWPerCm2();
    EXPECT_GT(ratio, 3.5);
    EXPECT_LT(ratio, 7.0);
}

TEST(Headline, EnergyAdvantageIsOrdersOfMagnitude)
{
    // Intro: "more efficient ... in energy by [a factor of] 200".
    // Our calibration (see EXPERIMENTS.md) reproduces a one-to-two
    // order-of-magnitude advantage for the gated/clockless best case.
    const CellLibrary &lib = CellLibrary::amis();
    auto race_best = tech::raceDesignPoint(lib, 20, RaceCase::Best,
                                           ClockMode::Clockless);
    auto sys = tech::systolicDesignPoint(lib, 20);
    double ratio = sys.energyJ / race_best.energyJ;
    EXPECT_GT(ratio, 20.0);
    double worst_ratio =
        sys.energyJ /
        tech::raceDesignPoint(lib, 20, RaceCase::Worst).energyJ;
    EXPECT_GT(worst_ratio, 4.0);
}

TEST(Headline, ThroughputCrossoverNearSeventy)
{
    // Fig. 9a / Section 6: "better than that of the systolic array
    // for N < 70".
    const CellLibrary &lib = CellLibrary::amis();
    size_t crossover = 0;
    for (size_t n = 10; n <= 120; ++n) {
        auto race = tech::raceDesignPoint(lib, n, RaceCase::Best);
        auto sys = tech::systolicDesignPoint(lib, n);
        if (race.throughputPerSecPerCm2() <
            sys.throughputPerSecPerCm2()) {
            crossover = n;
            break;
        }
    }
    EXPECT_GE(crossover, 50u);
    EXPECT_LE(crossover, 90u);
}

TEST(Headline, BothDesignsBelowItrsCeiling)
{
    // Fig. 9b: everything stays under 200 W/cm^2, Race Logic far
    // under.
    const CellLibrary &lib = CellLibrary::amis();
    for (size_t n = 10; n <= 100; n += 10) {
        auto race = tech::raceDesignPoint(lib, n, RaceCase::Worst);
        auto sys = tech::systolicDesignPoint(lib, n);
        EXPECT_LT(sys.powerDensityWPerCm2(),
                  tech::kItrsPowerDensityLimit);
        EXPECT_LT(race.powerDensityWPerCm2(),
                  tech::kItrsPowerDensityLimit / 4.0);
    }
}

// ------------------------------------------------- activity pricing

TEST(ActivityPricing, ClockAndDataSplit)
{
    const CellLibrary &lib = CellLibrary::amis();
    circuit::Activity activity;
    activity.clockedDffCycles = 1000;
    activity.netToggles = 500;
    double e = tech::energyFromActivityJ(lib, activity);
    double expect = 1000 * lib.dffClockCapF * 25.0 +
                    500 * lib.netCapF * 25.0;
    EXPECT_NEAR(e, expect, expect * 1e-12);
}

TEST(ActivityPricing, MetricsArithmetic)
{
    tech::DesignPoint p;
    p.label = "x";
    p.latencyNs = 100.0;
    p.energyJ = 1e-9;
    p.areaUm2 = 1e6; // 0.01 cm^2
    EXPECT_NEAR(p.throughputPerSec(), 1e7, 1.0);
    EXPECT_NEAR(p.throughputPerSecPerCm2(), 1e9, 1e3);
    EXPECT_NEAR(p.powerDensityWPerCm2(), 1.0, 1e-9);
    EXPECT_NEAR(p.energyDelayProduct(), 1e-16, 1e-22);
}

} // namespace
