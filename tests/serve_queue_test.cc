/**
 * @file
 * Admission-control tests for the serve daemon's bounded queue: the
 * depth bounds *outstanding* work (queued + inflight), rejections are
 * typed and counted, and the ledger stays coherent -- enqueued ==
 * completed + queued + inflight + shedDeadline at every snapshot.
 */

#include <gtest/gtest.h>

#include <thread>

#include "rl/serve/queue.h"

namespace {

using namespace racelogic::serve;

QueuedJob
noopJob(size_t shard = 0)
{
    return QueuedJob{shard, [] {}};
}

TEST(ServeQueue, AdmitsUpToDepthThenRejectsTyped)
{
    RequestQueue queue(3);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::QueueFull);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::QueueFull);

    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.enqueued, 3u);
    EXPECT_EQ(stats.queued, 3u);
    EXPECT_EQ(stats.rejectedQueueFull, 2u);
    EXPECT_EQ(stats.highWater, 3u);
}

TEST(ServeQueue, DepthBoundsOutstandingNotJustBuffered)
{
    // Draining moves jobs to inflight; the bound must still hold, or
    // QueueFull would depend on dispatcher timing.
    RequestQueue queue(2);
    ASSERT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);

    const auto batch = queue.drain(8);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(queue.stats().queued, 0u);
    EXPECT_EQ(queue.stats().inflight, 2u);

    // Buffer is empty, but both jobs are still outstanding.
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::QueueFull);

    queue.markDone(1);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
}

TEST(ServeQueue, DrainPreservesFifoOrderAndCapsBatch)
{
    RequestQueue queue(8);
    for (size_t i = 0; i < 5; ++i)
        ASSERT_EQ(queue.tryPush(noopJob(i)),
                  RequestQueue::Admit::Accepted);

    auto first = queue.drain(3);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first[0].shard, 0u);
    EXPECT_EQ(first[2].shard, 2u);

    auto rest = queue.drain(8);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0].shard, 3u);
    EXPECT_EQ(rest[1].shard, 4u);
}

TEST(ServeQueue, LedgerStaysCoherent)
{
    RequestQueue queue(4);
    queue.noteRejected(Status::Oversized);
    queue.noteRejected(Status::BadRequest);
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(queue.tryPush(noopJob()),
                  RequestQueue::Admit::Accepted);
    (void)queue.tryPush(noopJob()); // QueueFull
    auto batch = queue.drain(2);
    queue.markDone(batch.size());

    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.enqueued,
              stats.completed + stats.queued + stats.inflight);
    EXPECT_EQ(stats.rejected(), 3u);
    EXPECT_EQ(stats.rejectedOversized, 1u);
    EXPECT_EQ(stats.rejectedBadRequest, 1u);
    EXPECT_EQ(stats.rejectedQueueFull, 1u);
}

TEST(ServeQueue, HighWaterTracksThePeakNotThePresent)
{
    RequestQueue queue(8);
    for (int i = 0; i < 6; ++i)
        ASSERT_EQ(queue.tryPush(noopJob()),
                  RequestQueue::Admit::Accepted);
    queue.markDone(queue.drain(6).size());
    EXPECT_EQ(queue.stats().queued, 0u);
    EXPECT_EQ(queue.stats().inflight, 0u);
    EXPECT_EQ(queue.stats().highWater, 6u);
}

TEST(ServeQueue, ShutdownRejectsNewWorkButDrainsOld)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.tryPush(noopJob(7)), RequestQueue::Admit::Accepted);
    queue.beginShutdown();

    EXPECT_EQ(queue.tryPush(noopJob()),
              RequestQueue::Admit::ShuttingDown);
    EXPECT_EQ(queue.stats().rejectedShutdown, 1u);

    auto batch = queue.drain(4);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].shard, 7u);
    queue.markDone(1);

    // Nothing left: drain must return empty instead of blocking.
    EXPECT_TRUE(queue.drain(4).empty());
    queue.waitDrained(); // and waitDrained must not hang
}

TEST(ServeQueue, DrainShedsExpiredJobs)
{
    RequestQueue queue(8);
    int ran = 0, shedRan = 0;

    QueuedJob live = noopJob(1);
    live.run = [&] { ++ran; };

    QueuedJob expired = noopJob(2);
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    expired.onShed = [&] { ++shedRan; };

    ASSERT_EQ(queue.tryPush(std::move(expired)),
              RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(std::move(live)),
              RequestQueue::Admit::Accepted);

    std::vector<QueuedJob> shed;
    auto batch = queue.drain(8, &shed);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].shard, 1u);
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0].shard, 2u);

    // Shed jobs are never inflight; only the raced job is.
    QueueStats stats = queue.stats();
    EXPECT_EQ(stats.shedDeadline, 1u);
    EXPECT_EQ(stats.inflight, 1u);
    EXPECT_EQ(stats.queued, 0u);

    for (auto &job : batch)
        job.run();
    for (auto &job : shed)
        job.onShed();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(shedRan, 1);
    queue.markDone(batch.size());

    // Ledger: enqueued == completed + queued + inflight + shedDeadline.
    stats = queue.stats();
    EXPECT_EQ(stats.enqueued, stats.completed + stats.queued +
                                  stats.inflight + stats.shedDeadline);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(ServeQueue, NullShedDrainsExpiredJobsNormally)
{
    // Callers that pass no shed vector (the pre-deadline behavior)
    // must see expired jobs drain like any other.
    RequestQueue queue(4);
    QueuedJob expired = noopJob(3);
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    ASSERT_EQ(queue.tryPush(std::move(expired)),
              RequestQueue::Admit::Accepted);

    auto batch = queue.drain(4);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].shard, 3u);
    EXPECT_EQ(queue.stats().shedDeadline, 0u);
    queue.markDone(1);
}

TEST(ServeQueue, SheddingReleasesAdmissionCapacity)
{
    // Shed jobs retire immediately: the slot they held must be free
    // for new work without any markDone().
    RequestQueue queue(1);
    QueuedJob expired = noopJob();
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    ASSERT_EQ(queue.tryPush(std::move(expired)),
              RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::QueueFull);

    // The queue is non-empty, so drain() does not block; with the
    // only job shed, the batch comes back empty.
    std::vector<QueuedJob> shed;
    EXPECT_TRUE(queue.drain(4, &shed).empty());
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
}

TEST(ServeQueue, WaitDrainedWakesWhenShedEmptiesTheQueue)
{
    // If shedding retires the last outstanding job, waitDrained()
    // must wake without a markDone().
    RequestQueue queue(4);
    QueuedJob expired = noopJob();
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    ASSERT_EQ(queue.tryPush(std::move(expired)),
              RequestQueue::Admit::Accepted);
    queue.beginShutdown();

    std::thread dispatcher([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        std::vector<QueuedJob> shed;
        (void)queue.drain(4, &shed);
    });
    queue.waitDrained();
    dispatcher.join();
    EXPECT_EQ(queue.stats().shedDeadline, 1u);
}

TEST(ServeQueue, DrainBlocksUntilAJobArrives)
{
    RequestQueue queue(4);
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        (void)queue.tryPush(noopJob(3));
    });
    auto batch = queue.drain(1); // blocks until the producer pushes
    producer.join();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].shard, 3u);
    queue.markDone(1);
}

TEST(ServeQueue, WaitDrainedBlocksUntilInflightRetires)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    auto batch = queue.drain(1);
    queue.beginShutdown();

    std::thread finisher([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        queue.markDone(batch.size());
    });
    queue.waitDrained(); // must block until markDone, then return
    finisher.join();
    EXPECT_EQ(queue.stats().completed, 1u);
}

} // namespace
