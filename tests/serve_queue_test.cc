/**
 * @file
 * Admission-control tests for the serve daemon's bounded queue: the
 * depth bounds *outstanding* work (queued + inflight), rejections are
 * typed and counted, and the ledger stays coherent -- enqueued ==
 * completed + queued + inflight + shedDeadline + shedEvicted at every
 * snapshot, globally and per priority class.
 */

#include <gtest/gtest.h>

#include <thread>

#include "rl/serve/queue.h"

namespace {

using namespace racelogic::serve;

QueuedJob
noopJob(size_t shard = 0)
{
    return QueuedJob{shard, [] {}};
}

QueuedJob
classedJob(Priority priority, size_t shard = 0)
{
    QueuedJob job = noopJob(shard);
    job.priority = priority;
    return job;
}

// The class ledgers partition the global one.  completed only
// partitions when every retirement went through the per-class
// markDone overload, so callers that used the legacy size_t overload
// pass checkCompleted = false.
void
expectLedgerCoherent(const QueueStats &stats, bool checkCompleted = true)
{
    EXPECT_EQ(stats.enqueued, stats.completed + stats.queued +
                                  stats.inflight + stats.shedDeadline +
                                  stats.shedEvicted);
    uint64_t enq = 0, done = 0, queued = 0, shedD = 0, shedE = 0;
    for (const ClassStats &c : stats.classes) {
        enq += c.enqueued;
        done += c.completed;
        queued += c.queued;
        shedD += c.shedDeadline;
        shedE += c.shedEvicted;
    }
    EXPECT_EQ(enq, stats.enqueued);
    if (checkCompleted)
        EXPECT_EQ(done, stats.completed);
    EXPECT_EQ(queued, stats.queued);
    EXPECT_EQ(shedD, stats.shedDeadline);
    EXPECT_EQ(shedE, stats.shedEvicted);
}

TEST(ServeQueue, AdmitsUpToDepthThenRejectsTyped)
{
    RequestQueue queue(3);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::QueueFull);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::QueueFull);

    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.enqueued, 3u);
    EXPECT_EQ(stats.queued, 3u);
    EXPECT_EQ(stats.rejectedQueueFull, 2u);
    EXPECT_EQ(stats.highWater, 3u);
}

TEST(ServeQueue, DepthBoundsOutstandingNotJustBuffered)
{
    // Draining moves jobs to inflight; the bound must still hold, or
    // QueueFull would depend on dispatcher timing.
    RequestQueue queue(2);
    ASSERT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);

    const auto batch = queue.drain(8);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(queue.stats().queued, 0u);
    EXPECT_EQ(queue.stats().inflight, 2u);

    // Buffer is empty, but both jobs are still outstanding.
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::QueueFull);

    queue.markDone(1);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
}

TEST(ServeQueue, DrainPreservesFifoOrderAndCapsBatch)
{
    RequestQueue queue(8);
    for (size_t i = 0; i < 5; ++i)
        ASSERT_EQ(queue.tryPush(noopJob(i)),
                  RequestQueue::Admit::Accepted);

    auto first = queue.drain(3);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first[0].shard, 0u);
    EXPECT_EQ(first[2].shard, 2u);

    auto rest = queue.drain(8);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0].shard, 3u);
    EXPECT_EQ(rest[1].shard, 4u);
}

TEST(ServeQueue, LedgerStaysCoherent)
{
    RequestQueue queue(4);
    queue.noteRejected(Status::Oversized);
    queue.noteRejected(Status::BadRequest);
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(queue.tryPush(noopJob()),
                  RequestQueue::Admit::Accepted);
    (void)queue.tryPush(noopJob()); // QueueFull
    auto batch = queue.drain(2);
    queue.markDone(batch.size());

    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.enqueued,
              stats.completed + stats.queued + stats.inflight);
    EXPECT_EQ(stats.rejected(), 3u);
    EXPECT_EQ(stats.rejectedOversized, 1u);
    EXPECT_EQ(stats.rejectedBadRequest, 1u);
    EXPECT_EQ(stats.rejectedQueueFull, 1u);
}

TEST(ServeQueue, HighWaterTracksThePeakNotThePresent)
{
    RequestQueue queue(8);
    for (int i = 0; i < 6; ++i)
        ASSERT_EQ(queue.tryPush(noopJob()),
                  RequestQueue::Admit::Accepted);
    queue.markDone(queue.drain(6).size());
    EXPECT_EQ(queue.stats().queued, 0u);
    EXPECT_EQ(queue.stats().inflight, 0u);
    EXPECT_EQ(queue.stats().highWater, 6u);
}

TEST(ServeQueue, ShutdownRejectsNewWorkButDrainsOld)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.tryPush(noopJob(7)), RequestQueue::Admit::Accepted);
    queue.beginShutdown();

    EXPECT_EQ(queue.tryPush(noopJob()),
              RequestQueue::Admit::ShuttingDown);
    EXPECT_EQ(queue.stats().rejectedShutdown, 1u);

    auto batch = queue.drain(4);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].shard, 7u);
    queue.markDone(1);

    // Nothing left: drain must return empty instead of blocking.
    EXPECT_TRUE(queue.drain(4).empty());
    queue.waitDrained(); // and waitDrained must not hang
}

TEST(ServeQueue, DrainShedsExpiredJobs)
{
    RequestQueue queue(8);
    int ran = 0, shedRan = 0;

    QueuedJob live = noopJob(1);
    live.run = [&] { ++ran; };

    QueuedJob expired = noopJob(2);
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    expired.onShed = [&](Status) { ++shedRan; };

    ASSERT_EQ(queue.tryPush(std::move(expired)),
              RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(std::move(live)),
              RequestQueue::Admit::Accepted);

    std::vector<QueuedJob> shed;
    auto batch = queue.drain(8, &shed);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].shard, 1u);
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0].shard, 2u);

    // Shed jobs are never inflight; only the raced job is.
    QueueStats stats = queue.stats();
    EXPECT_EQ(stats.shedDeadline, 1u);
    EXPECT_EQ(stats.inflight, 1u);
    EXPECT_EQ(stats.queued, 0u);

    for (auto &job : batch)
        job.run();
    for (auto &job : shed)
        job.onShed(Status::DeadlineExceeded);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(shedRan, 1);
    queue.markDone(batch.size());

    // Ledger: enqueued == completed + queued + inflight + shedDeadline.
    stats = queue.stats();
    EXPECT_EQ(stats.enqueued, stats.completed + stats.queued +
                                  stats.inflight + stats.shedDeadline);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(ServeQueue, NullShedDrainsExpiredJobsNormally)
{
    // Callers that pass no shed vector (the pre-deadline behavior)
    // must see expired jobs drain like any other.
    RequestQueue queue(4);
    QueuedJob expired = noopJob(3);
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    ASSERT_EQ(queue.tryPush(std::move(expired)),
              RequestQueue::Admit::Accepted);

    auto batch = queue.drain(4);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].shard, 3u);
    EXPECT_EQ(queue.stats().shedDeadline, 0u);
    queue.markDone(1);
}

TEST(ServeQueue, SheddingReleasesAdmissionCapacity)
{
    // Shed jobs retire immediately: the slot they held must be free
    // for new work without any markDone().
    RequestQueue queue(1);
    QueuedJob expired = noopJob();
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    ASSERT_EQ(queue.tryPush(std::move(expired)),
              RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::QueueFull);

    // The queue is non-empty, so drain() does not block; with the
    // only job shed, the batch comes back empty.
    std::vector<QueuedJob> shed;
    EXPECT_TRUE(queue.drain(4, &shed).empty());
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
}

TEST(ServeQueue, WaitDrainedWakesWhenShedEmptiesTheQueue)
{
    // If shedding retires the last outstanding job, waitDrained()
    // must wake without a markDone().
    RequestQueue queue(4);
    QueuedJob expired = noopJob();
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);
    ASSERT_EQ(queue.tryPush(std::move(expired)),
              RequestQueue::Admit::Accepted);
    queue.beginShutdown();

    std::thread dispatcher([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        std::vector<QueuedJob> shed;
        (void)queue.drain(4, &shed);
    });
    queue.waitDrained();
    dispatcher.join();
    EXPECT_EQ(queue.stats().shedDeadline, 1u);
}

TEST(ServeQueue, DrainBlocksUntilAJobArrives)
{
    RequestQueue queue(4);
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        (void)queue.tryPush(noopJob(3));
    });
    auto batch = queue.drain(1); // blocks until the producer pushes
    producer.join();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].shard, 3u);
    queue.markDone(1);
}

TEST(ServeQueue, WeightedDrainFavorsHigherClassesWithoutStarvation)
{
    // 4 interactive : 2 normal : 1 batch per round -- interactive
    // leads every round, yet batch always gets its slot.
    RequestQueue queue(16);
    for (size_t i = 0; i < 4; ++i) {
        ASSERT_EQ(queue.tryPush(classedJob(Priority::Batch, 100 + i)),
                  RequestQueue::Admit::Accepted);
        ASSERT_EQ(queue.tryPush(classedJob(Priority::Normal, 200 + i)),
                  RequestQueue::Admit::Accepted);
        ASSERT_EQ(
            queue.tryPush(classedJob(Priority::Interactive, 300 + i)),
            RequestQueue::Admit::Accepted);
    }

    auto batch = queue.drain(7); // one full weighted round
    ASSERT_EQ(batch.size(), 7u);
    // Interactive quota 4, FIFO within the class...
    EXPECT_EQ(batch[0].shard, 300u);
    EXPECT_EQ(batch[1].shard, 301u);
    EXPECT_EQ(batch[2].shard, 302u);
    EXPECT_EQ(batch[3].shard, 303u);
    // ...then normal quota 2...
    EXPECT_EQ(batch[4].shard, 200u);
    EXPECT_EQ(batch[5].shard, 201u);
    // ...then batch's guaranteed slot.
    EXPECT_EQ(batch[6].shard, 100u);

    queue.markDone(batch.size());
    auto rest = queue.drain(16);
    ASSERT_EQ(rest.size(), 5u);
    queue.markDone(rest.size());
    expectLedgerCoherent(queue.stats(), /*checkCompleted=*/false);
}

TEST(ServeQueue, EvictionShedsLowestClassFirst)
{
    // At the bound, an interactive arrival claims the slot of the
    // newest queued batch job; the victim comes back via the
    // out-param so the caller can send its typed reply off-lock.
    RequestQueue queue(2);
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Batch, 1)),
              RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Batch, 2)),
              RequestQueue::Admit::Accepted);

    QueuedJob evicted;
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Interactive, 9),
                            &evicted),
              RequestQueue::Admit::Accepted);
    ASSERT_TRUE(evicted.run != nullptr);
    EXPECT_EQ(evicted.shard, 2u); // newest batch job, not the oldest

    QueueStats stats = queue.stats();
    EXPECT_EQ(stats.shedEvicted, 1u);
    EXPECT_EQ(stats.classes[0].shedEvicted, 1u);
    EXPECT_EQ(stats.queued, 2u);
    expectLedgerCoherent(stats);

    // Only strictly lower classes are victims: batch cannot evict
    // batch, so an equal-class arrival degrades to QueueFull.
    QueuedJob none;
    EXPECT_EQ(queue.tryPush(classedJob(Priority::Batch, 3), &none),
              RequestQueue::Admit::QueueFull);
    EXPECT_EQ(queue.stats().rejectedQueueFull, 1u);

    // Once nothing below interactive is queued, interactive arrivals
    // get QueueFull too -- the protected classes never eat each other.
    QueuedJob second;
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Interactive, 10),
                            &second),
              RequestQueue::Admit::Accepted);
    EXPECT_EQ(second.shard, 1u); // the remaining batch job
    EXPECT_EQ(queue.tryPush(classedJob(Priority::Interactive, 11), &none),
              RequestQueue::Admit::QueueFull);
    EXPECT_EQ(queue.stats().rejectedQueueFull, 2u);

    auto batch = queue.drain(4);
    std::array<uint64_t, kPriorityClasses> byClass{};
    for (const QueuedJob &job : batch)
        ++byClass[static_cast<size_t>(job.priority)];
    queue.markDone(byClass);
    expectLedgerCoherent(queue.stats());
}

TEST(ServeQueue, EvictionWithoutOutParamDegradesToQueueFull)
{
    // Legacy callers that pass no out-param must never lose a job.
    RequestQueue queue(1);
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Batch)),
              RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(classedJob(Priority::Interactive)),
              RequestQueue::Admit::QueueFull);
    EXPECT_EQ(queue.stats().shedEvicted, 0u);
    EXPECT_EQ(queue.stats().queued, 1u);
}

TEST(ServeQueue, BrownoutShedsBatchAndHalvesDepth)
{
    RequestQueue queue(8); // brownout depth defaults to 4
    queue.setBrownout(true);
    EXPECT_TRUE(queue.brownout());

    // Batch is shed at admission with a resource verdict...
    EXPECT_EQ(queue.tryPush(classedJob(Priority::Batch)),
              RequestQueue::Admit::Brownout);
    QueueStats stats = queue.stats();
    EXPECT_EQ(stats.rejectedResource, 1u);
    EXPECT_EQ(stats.classes[0].rejectedResource, 1u);

    // ...and the admission bound halves for everyone else.
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(queue.tryPush(classedJob(Priority::Normal)),
                  RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(classedJob(Priority::Normal)),
              RequestQueue::Admit::QueueFull);

    // Recovery restores the full depth.
    queue.setBrownout(false);
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(queue.tryPush(classedJob(Priority::Normal)),
                  RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(classedJob(Priority::Batch)),
              RequestQueue::Admit::QueueFull);
    queue.markDone(queue.drain(8).size());
    expectLedgerCoherent(queue.stats(), /*checkCompleted=*/false);
}

TEST(ServeQueue, ExplicitBrownoutDepthOverridesTheDefault)
{
    RequestQueue queue(8, 2);
    queue.setBrownout(true);
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Normal)),
              RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Normal)),
              RequestQueue::Admit::Accepted);
    EXPECT_EQ(queue.tryPush(classedJob(Priority::Normal)),
              RequestQueue::Admit::QueueFull);
}

TEST(ServeQueue, PerClassCompletionKeepsClassLedgersCoherent)
{
    RequestQueue queue(8);
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Batch)),
              RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Interactive)),
              RequestQueue::Admit::Accepted);
    ASSERT_EQ(queue.tryPush(classedJob(Priority::Interactive)),
              RequestQueue::Admit::Accepted);

    auto batch = queue.drain(8);
    ASSERT_EQ(batch.size(), 3u);
    std::array<uint64_t, kPriorityClasses> byClass{};
    for (const QueuedJob &job : batch)
        ++byClass[static_cast<size_t>(job.priority)];
    queue.markDone(byClass);

    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.classes[0].completed, 1u);
    EXPECT_EQ(stats.classes[2].completed, 2u);
    EXPECT_EQ(stats.completed, 3u);
    expectLedgerCoherent(stats);
}

TEST(ServeQueue, WaitDrainedBlocksUntilInflightRetires)
{
    RequestQueue queue(4);
    ASSERT_EQ(queue.tryPush(noopJob()), RequestQueue::Admit::Accepted);
    auto batch = queue.drain(1);
    queue.beginShutdown();

    std::thread finisher([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        queue.markDone(batch.size());
    });
    queue.waitDrained(); // must block until markDone, then return
    finisher.join();
    EXPECT_EQ(queue.stats().completed, 1u);
}

} // namespace
