/**
 * @file
 * Equivalence suite for the bucketed wavefront race kernel: the new
 * kernel, the heap-scheduled event-queue reference, and the DP oracle
 * must agree node-for-node on randomized DAGs and sequences -- Or and
 * And races, with and without an early-termination horizon -- and the
 * grid-direct kernel must reproduce the materialized edit-graph race
 * exactly (arrival grids and event counts included).
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/bio/edit_graph.h"
#include "rl/core/batch.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_network.h"
#include "rl/core/wavefront.h"
#include "rl/graph/generate.h"
#include "rl/graph/paths.h"
#include "rl/util/random.h"
#include "rl/util/thread_pool.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::RaceOutcome;
using core::RaceType;
using core::WavefrontRaceKernel;
using graph::Dag;
using graph::NodeId;
using graph::Objective;

// ------------------------------------------------------------ CSR view

TEST(CsrView, MatchesAdjacencyOrder)
{
    Dag d(4);
    d.addEdge(2, 0, 7);
    d.addEdge(2, 3, 1);
    d.addEdge(0, 3, 2);
    d.addEdge(2, 1, 5);

    graph::CsrOutEdges csr = d.outEdgesCsr();
    ASSERT_EQ(csr.nodeCount(), 4u);
    ASSERT_EQ(csr.edgeCount(), 4u);
    // Node 2's edges keep insertion order 0, 3, 1.
    EXPECT_EQ(csr.offsets[2], 1u);
    EXPECT_EQ(csr.offsets[3], 4u);
    EXPECT_EQ(csr.to[1], 0u);
    EXPECT_EQ(csr.to[2], 3u);
    EXPECT_EQ(csr.to[3], 1u);
    EXPECT_EQ(csr.weight[1], 7);
    EXPECT_EQ(csr.weight[3], 5);
    // Node 1 has no out-edges: empty range.
    EXPECT_EQ(csr.offsets[1], 1u);

    // The generic order check across every node.
    for (NodeId v = 0; v < d.nodeCount(); ++v) {
        const auto &adj = d.outEdges(v);
        ASSERT_EQ(csr.offsets[v + 1] - csr.offsets[v], adj.size());
        for (size_t k = 0; k < adj.size(); ++k) {
            const graph::Edge &e = d.edges()[adj[k]];
            EXPECT_EQ(csr.to[csr.offsets[v] + k], e.to);
            EXPECT_EQ(csr.weight[csr.offsets[v] + k], e.weight);
        }
    }
}

// ----------------------------------- kernel vs event queue vs oracle

void
expectSameOutcome(const RaceOutcome &got, const RaceOutcome &want)
{
    ASSERT_EQ(got.firing.size(), want.firing.size());
    for (size_t n = 0; n < want.firing.size(); ++n)
        EXPECT_TRUE(got.firing[n] == want.firing[n]) << "node " << n;
    EXPECT_EQ(got.events, want.events);
    EXPECT_EQ(got.horizon, want.horizon);
}

class WavefrontVsReference : public ::testing::TestWithParam<int> {};

TEST_P(WavefrontVsReference, OrRaceMatchesEventQueueAndDp)
{
    util::Rng rng(3100 + GetParam());
    // Zero weights included: wire edges must propagate same-tick.
    Dag d = graph::randomDag(rng, 50, 0.15, {0, 9});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    (void)sink;

    RaceOutcome kernel =
        WavefrontRaceKernel(d).race({source}, RaceType::Or);
    RaceOutcome reference =
        core::raceDagEventDriven(d, {source}, RaceType::Or);
    expectSameOutcome(kernel, reference);

    auto dp = graph::solveDag(d, {source}, Objective::Shortest);
    for (NodeId n = 0; n < d.nodeCount(); ++n) {
        if (dp.reached(n))
            EXPECT_EQ(kernel.at(n).time(),
                      static_cast<sim::Tick>(dp.distance[n]));
        else
            EXPECT_FALSE(kernel.at(n).fired());
    }
}

TEST_P(WavefrontVsReference, AndRaceMatchesEventQueueAndDp)
{
    util::Rng rng(3500 + GetParam());
    Dag d = graph::layeredDag(rng, 6, 5, 0.5, {1, 9});
    std::vector<NodeId> sources{0, 1, 2, 3, 4};
    ASSERT_TRUE(core::andRaceMatchesDp(d, sources));

    RaceOutcome kernel =
        WavefrontRaceKernel(d).race(sources, RaceType::And);
    RaceOutcome reference =
        core::raceDagEventDriven(d, sources, RaceType::And);
    expectSameOutcome(kernel, reference);

    auto dp = graph::solveDag(d, sources, Objective::Longest);
    for (NodeId n = 0; n < d.nodeCount(); ++n)
        if (dp.reached(n))
            EXPECT_EQ(kernel.at(n).time(),
                      static_cast<sim::Tick>(dp.distance[n]));
}

TEST_P(WavefrontVsReference, HorizonTruncatesIdenticallyOnBothKernels)
{
    util::Rng rng(3900 + GetParam());
    Dag d = graph::randomDag(rng, 40, 0.2, {1, 6});
    auto [source, sink] = graph::addSuperEndpoints(d, 1);
    (void)sink;

    RaceOutcome full =
        WavefrontRaceKernel(d).race({source}, RaceType::Or);
    for (sim::Tick horizon : {sim::Tick(0), sim::Tick(3), full.horizon}) {
        RaceOutcome kernel =
            WavefrontRaceKernel(d).race({source}, RaceType::Or, horizon);
        RaceOutcome reference = core::raceDagEventDriven(
            d, {source}, RaceType::Or, horizon);
        expectSameOutcome(kernel, reference);
        // A node fires under the horizon iff its full-race arrival is
        // within it (arrival times are monotone in simulated time).
        for (NodeId n = 0; n < d.nodeCount(); ++n) {
            if (full.at(n).fired() && full.at(n).time() <= horizon) {
                ASSERT_TRUE(kernel.at(n).fired()) << "node " << n;
                EXPECT_EQ(kernel.at(n).time(), full.at(n).time());
            } else {
                EXPECT_FALSE(kernel.at(n).fired()) << "node " << n;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WavefrontVsReference,
                         ::testing::Range(0, 15));

TEST(Wavefront, RaceDagDispatchesAndAgreesOnFig3)
{
    Dag d = graph::makeFig3ExampleDag();
    RaceOutcome out = core::raceDag(d, {0, 1}, RaceType::Or);
    EXPECT_EQ(out.at(4).time(), 2u);
    // The seed quirk, fixed: the AND race (longest path) gives 4.
    RaceOutcome longest = core::raceDag(d, {0, 1}, RaceType::And);
    EXPECT_EQ(longest.at(4).time(), 4u);
}

TEST(Wavefront, OversizedWeightsFallBackToEventKernel)
{
    // One delay above the calendar bound: raceDag must still answer
    // (via the heap kernel) and agree with the DP.
    Dag d(3);
    d.addEdge(0, 1, core::kMaxWavefrontWeight + 5);
    d.addEdge(1, 2, 2);
    EXPECT_FALSE(WavefrontRaceKernel::suitableFor(d));
    RaceOutcome out = core::raceDag(d, {0}, RaceType::Or);
    EXPECT_EQ(out.at(2).time(),
              static_cast<sim::Tick>(core::kMaxWavefrontWeight + 7));
}

// --------------------------------------------- grid-direct kernel

class GridKernel : public ::testing::TestWithParam<int> {};

TEST_P(GridKernel, MatchesMaterializedEditGraphRaceExactly)
{
    util::Rng rng(4300 + GetParam());
    ScoreMatrix m = GetParam() % 2 == 0
                        ? ScoreMatrix::dnaShortestPathInfMismatch()
                        : ScoreMatrix::dnaShortestPath();
    Sequence a = Sequence::random(rng, Alphabet::dna(),
                                  1 + rng.index(12));
    Sequence b = Sequence::random(rng, Alphabet::dna(),
                                  1 + rng.index(12));

    core::RaceGridResult grid = core::raceEditGrid(a, b, m);

    bio::EditGraph eg = bio::makeEditGraph(a, b, m);
    RaceOutcome reference = core::raceDagEventDriven(
        eg.dag, {eg.source}, RaceType::Or);

    EXPECT_EQ(grid.events, reference.events);
    size_t fired = 0;
    for (size_t i = 0; i <= eg.rows; ++i) {
        for (size_t j = 0; j <= eg.cols; ++j) {
            core::TemporalValue v = reference.at(eg.node(i, j));
            if (v.fired()) {
                ++fired;
                EXPECT_EQ(grid.arrival.at(i, j), v.time())
                    << "(" << i << "," << j << ")";
            } else {
                EXPECT_EQ(grid.arrival.at(i, j), sim::kTickInfinity);
            }
        }
    }
    EXPECT_EQ(grid.cellsFired, fired);
    EXPECT_TRUE(grid.completed);
    EXPECT_EQ(grid.score, bio::globalScore(a, b, m));
}

TEST_P(GridKernel, HorizonMatchesFullRacePrefix)
{
    util::Rng rng(4700 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    Sequence a = Sequence::random(rng, Alphabet::dna(), 10);
    Sequence b = Sequence::random(rng, Alphabet::dna(), 10);

    core::RaceGridResult full = core::raceEditGrid(a, b, m);
    for (sim::Tick horizon :
         {sim::Tick(0), sim::Tick(4), sim::Tick(full.latencyCycles)}) {
        core::RaceGridResult bounded =
            core::raceEditGrid(a, b, m, horizon);
        for (size_t i = 0; i < full.arrival.rows(); ++i) {
            for (size_t j = 0; j < full.arrival.cols(); ++j) {
                sim::Tick t = full.arrival.at(i, j);
                EXPECT_EQ(bounded.arrival.at(i, j),
                          t <= horizon ? t : sim::kTickInfinity);
            }
        }
        bool sinkIn = full.latencyCycles <= horizon;
        EXPECT_EQ(bounded.completed, sinkIn);
        if (sinkIn) {
            EXPECT_EQ(bounded.score, full.score);
        } else {
            EXPECT_EQ(bounded.score, bio::kScoreInfinity);
            EXPECT_EQ(bounded.latencyCycles, horizon);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridKernel, ::testing::Range(0, 10));

// ------------------------------- horizon-true screening accounting

TEST(ScreeningHorizon, BatchBusyCyclesAgreeWithClampAfterFullRace)
{
    // Satellite of the kernel rework: BatchScreeningEngine races each
    // comparison with the threshold as the kernel horizon.  The
    // resulting busy cycles must equal the old accounting (race to
    // completion, clamp to the threshold afterwards), comparison by
    // comparison.
    util::Rng rng(51);
    auto wl = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), 18, 40, 0.3,
        bio::MutationModel::uniform(0.1));
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    const bio::Score threshold = 22;

    core::BatchConfig cfg;
    cfg.fabricCount = 1; // makespan == busy time: exact accounting
    cfg.threshold = threshold;
    core::BatchScreeningEngine engine(m, cfg);
    core::BatchReport report = engine.run(wl.query, wl.database);

    core::RaceGridAligner full(m);
    uint64_t clampedTotal = 0;
    for (size_t i = 0; i < wl.database.size(); ++i) {
        bio::Score score = full.align(wl.query, wl.database[i]).score;
        EXPECT_EQ(report.accepted[i], score <= threshold) << i;
        clampedTotal +=
            std::min<uint64_t>(static_cast<uint64_t>(score),
                               static_cast<uint64_t>(threshold)) +
            cfg.resetCycles;
    }
    EXPECT_EQ(report.busyCycles, clampedTotal);
}

TEST(ScreeningHorizon, ScreenerStopsRacingAtThreshold)
{
    // The aborted race never fires cells past the threshold cycle --
    // visible through the aligner's bounded overload.
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    core::RaceGridAligner racer(m);
    Sequence a(Alphabet::dna(), "AAAAAAAA");
    Sequence b(Alphabet::dna(), "CCCCCCCC");
    core::RaceGridResult bounded = racer.align(a, b, 5);
    EXPECT_FALSE(bounded.completed);
    for (sim::Tick t : bounded.arrival.flat())
        EXPECT_TRUE(t == sim::kTickInfinity || t <= 5u);

    core::RaceGridResult full = racer.align(a, b);
    EXPECT_GT(full.events, bounded.events)
        << "the horizon should prune simulated arrivals";
}

// ------------------------------------------------------ thread pool

TEST(ThreadPool, CoversEveryIndexExactlyOnceAcrossBatches)
{
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    for (size_t round = 0; round < 3; ++round) {
        const size_t n = 257 + round;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    // Degenerate sizes.
    pool.parallelFor(0, [](size_t) { FAIL(); });
    std::atomic<int> one{0};
    pool.parallelFor(1, [&](size_t) { ++one; });
    EXPECT_EQ(one.load(), 1);
}

} // namespace
