/**
 * @file
 * Gate-level race grid (Fig. 4a/4b): the synthesizable fabric must
 * agree with the behavioral model and the DP oracle, reuse cleanly
 * across comparisons, and expose the activity the energy model
 * expects.
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::RaceGridCircuit;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

TEST(RaceGridCircuit, PaperExampleScores)
{
    RaceGridCircuit fabric(Alphabet::dna(), 7, 7);
    auto run = fabric.align(dna("GATTCGA"), dna("ACTGAGA"));
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(run.score, 10);
}

TEST(RaceGridCircuit, FabricIsReusedAcrossComparisons)
{
    // The same hardware races different strings ("efficient reuse of
    // the same Race Logic hardware").
    RaceGridCircuit fabric(Alphabet::dna(), 5, 5);
    auto r1 = fabric.align(dna("ACGTA"), dna("ACGTA"));
    ASSERT_TRUE(r1.completed);
    EXPECT_EQ(r1.score, 5);
    auto r2 = fabric.align(dna("AAAAA"), dna("CCCCC"));
    ASSERT_TRUE(r2.completed);
    EXPECT_EQ(r2.score, 10);
    auto r3 = fabric.align(dna("ACGTA"), dna("ACGTA"));
    ASSERT_TRUE(r3.completed);
    EXPECT_EQ(r3.score, 5) << "state fully cleared between runs";
}

class CircuitVsBehavioral : public ::testing::TestWithParam<int> {};

TEST_P(CircuitVsBehavioral, ScoresAgreeWithModelAndDp)
{
    util::Rng rng(2100 + GetParam());
    size_t n = 1 + rng.index(8);
    size_t m = 1 + rng.index(8);
    RaceGridCircuit fabric(Alphabet::dna(), n, m);
    core::RaceGridAligner model(
        ScoreMatrix::dnaShortestPathInfMismatch());
    for (int pair = 0; pair < 3; ++pair) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), m);
        auto run = fabric.align(a, b);
        ASSERT_TRUE(run.completed);
        EXPECT_EQ(run.score, model.align(a, b).score);
        EXPECT_EQ(run.score,
                  bio::globalScore(
                      a, b, ScoreMatrix::dnaShortestPathInfMismatch()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitVsBehavioral,
                         ::testing::Range(0, 15));

TEST(RaceGridCircuit, BinaryAlphabetFabric)
{
    RaceGridCircuit fabric(Alphabet::binary(), 4, 4);
    Sequence a(Alphabet::binary(), "0110");
    Sequence b(Alphabet::binary(), "0110");
    auto run = fabric.align(a, b);
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(run.score, 4);
}

TEST(RaceGridCircuit, CycleBudgetActsAsThreshold)
{
    // Section 6 at gate level: a run capped below the true score
    // reports "not similar" instead of completing.
    RaceGridCircuit fabric(Alphabet::dna(), 4, 4);
    auto run = fabric.align(dna("AAAA"), dna("CCCC"), /*max_cycles=*/5);
    EXPECT_FALSE(run.completed);
    EXPECT_EQ(run.score, bio::kScoreInfinity);
    EXPECT_EQ(run.cyclesRun, 5u);
    auto full = fabric.align(dna("AAAA"), dna("CCCC"));
    ASSERT_TRUE(full.completed);
    EXPECT_EQ(full.score, 8);
}

TEST(RaceGridCircuit, ClockActivityIsUngatedFabric)
{
    // Without gating, every DFF receives every clock: the C_clk * t
    // term of Eq. 3.
    RaceGridCircuit fabric(Alphabet::dna(), 3, 3);
    size_t dffs = fabric.netlist().dffCount();
    // 3 per unit cell + boundary chains.
    EXPECT_EQ(dffs, 3u * 3u * 3u + 6u);
    fabric.sim().clearActivity();
    Sequence a = dna("ACG");
    auto run = fabric.align(a, a);
    ASSERT_TRUE(run.completed);
    const auto &activity = fabric.sim().activity();
    EXPECT_EQ(activity.clockedDffCycles,
              dffs * activity.cycles);
}

TEST(RaceGridCircuit, MonotoneNetsToggleAtMostTwicePerRun)
{
    // Race signals rise once per comparison; with the reset excluded
    // from counting, per-net toggles stay bounded by small constants
    // (symbol lines may fall and rise between runs).
    RaceGridCircuit fabric(Alphabet::dna(), 4, 4);
    Sequence a = dna("ACGT");
    fabric.align(a, a);
    fabric.sim().clearActivity();
    fabric.align(a, dna("TGCA"));
    const auto &activity = fabric.sim().activity();
    for (uint64_t per_net : activity.perNet)
        EXPECT_LE(per_net, 2u);
}

TEST(RaceGridCircuit, UnitCellInventoryMatchesConstruction)
{
    // The inventory handed to the area model must equal what the
    // builder actually instantiates per cell.
    auto inv = RaceGridCircuit::unitCellInventory(2);
    RaceGridCircuit one(Alphabet::dna(), 1, 1);
    auto counts = one.netlist().typeCounts();
    // One cell + 2 boundary DFFs; inputs don't count as cell area.
    EXPECT_EQ(counts[size_t(circuit::GateType::Dff)],
              inv[size_t(circuit::GateType::Dff)] + 2);
    EXPECT_EQ(counts[size_t(circuit::GateType::Or)],
              inv[size_t(circuit::GateType::Or)]);
    EXPECT_EQ(counts[size_t(circuit::GateType::And)],
              inv[size_t(circuit::GateType::And)]);
    EXPECT_EQ(counts[size_t(circuit::GateType::Xnor)],
              inv[size_t(circuit::GateType::Xnor)]);
}

TEST(RaceGridCircuitDeath, WrongSizeRejected)
{
    RaceGridCircuit fabric(Alphabet::dna(), 3, 3);
    EXPECT_DEATH(fabric.align(dna("ACGT"), dna("ACG")),
                 "exactly");
}

} // namespace
