/**
 * @file
 * Tests for affine-gap alignment: the Gotoh reference DP, the
 * 3-layer race lattice, and the equivalence between them -- Race
 * Logic generalizing past the paper's linear-gap case study.
 */

#include <gtest/gtest.h>

#include "rl/bio/affine.h"
#include "rl/bio/align_dp.h"
#include "rl/core/affine_race.h"
#include "rl/graph/paths.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::AffineGapCosts;
using bio::Alphabet;
using bio::Score;
using bio::ScoreMatrix;
using bio::Sequence;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

/** Fig. 2b pair costs without using its gap column. */
ScoreMatrix
pairCosts(Score match, Score mismatch)
{
    ScoreMatrix m(Alphabet::dna(), bio::ScoreKind::Cost);
    for (bio::Symbol s = 0; s < 4; ++s)
        for (bio::Symbol t = 0; t < 4; ++t)
            m.setPair(s, t, s == t ? match : mismatch);
    return m;
}

// ------------------------------------------------------- reference DP

TEST(AffineDp, IdenticalStringsPayOnlyMatches)
{
    ScoreMatrix m = pairCosts(1, 2);
    AffineGapCosts gaps{3, 1};
    Sequence s = dna("ACGTACGT");
    EXPECT_EQ(bio::affineGlobalScore(s, s, m, gaps), 8);
}

TEST(AffineDp, SingleLongGapBeatsScatteredGaps)
{
    // Aligning ACGT against ACGTTTTT: one gap of length 4.
    ScoreMatrix m = pairCosts(1, 10);
    AffineGapCosts gaps{5, 1};
    Sequence a = dna("ACGT");
    Sequence b = dna("ACGTTTTT");
    // 4 matches (4) + open (5) + 3 extends (3) = 12.
    EXPECT_EQ(bio::affineGlobalScore(a, b, m, gaps), 12);
}

TEST(AffineDp, ForbiddenPairsForceAdjacentOppositeGaps)
{
    // No mismatches allowed: AAAA/CCCC must delete all of one and
    // insert all of the other -- two gap openings.
    ScoreMatrix m = pairCosts(1, bio::kScoreInfinity);
    AffineGapCosts gaps{4, 1};
    Sequence a = dna("AAAA");
    Sequence b = dna("CCCC");
    // 2 * (open + 3 * extend) = 2 * 7 = 14.
    EXPECT_EQ(bio::affineGlobalScore(a, b, m, gaps), 14);
}

TEST(AffineDp, OpenEqualsExtendReducesToLinearGaps)
{
    util::Rng rng(41);
    ScoreMatrix pairs = pairCosts(1, 2);
    ScoreMatrix linear = pairs;
    linear.setAllGaps(2);
    AffineGapCosts gaps{2, 2};
    for (int trial = 0; trial < 20; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::dna(),
                                      1 + rng.index(16));
        Sequence b = Sequence::random(rng, Alphabet::dna(),
                                      1 + rng.index(16));
        EXPECT_EQ(bio::affineGlobalScore(a, b, pairs, gaps),
                  bio::globalScore(a, b, linear));
    }
}

TEST(AffineDp, CostMonotoneInGapParameters)
{
    util::Rng rng(42);
    ScoreMatrix m = pairCosts(1, 3);
    Sequence a = Sequence::random(rng, Alphabet::dna(), 12);
    Sequence b = Sequence::random(rng, Alphabet::dna(), 9);
    Score cheap =
        bio::affineGlobalScore(a, b, m, AffineGapCosts{2, 1});
    Score pricey =
        bio::affineGlobalScore(a, b, m, AffineGapCosts{6, 2});
    EXPECT_LE(cheap, pricey);
}

// --------------------------------------------------------- the race

class AffineRaceVsDp : public ::testing::TestWithParam<int> {};

TEST_P(AffineRaceVsDp, RaceEqualsGotohEverywhere)
{
    util::Rng rng(20000 + GetParam());
    Score mismatch =
        rng.bernoulli(0.3) ? bio::kScoreInfinity : rng.uniformInt(1, 4);
    ScoreMatrix m = pairCosts(rng.uniformInt(1, 2), mismatch);
    AffineGapCosts gaps{rng.uniformInt(2, 6), rng.uniformInt(1, 2)};
    if (gaps.extend > gaps.open)
        std::swap(gaps.open, gaps.extend);
    Sequence a = Sequence::random(rng, Alphabet::dna(),
                                  1 + rng.index(14));
    Sequence b = Sequence::random(rng, Alphabet::dna(),
                                  1 + rng.index(14));
    auto raced = core::raceAffine(a, b, m, gaps);
    EXPECT_EQ(raced.score, bio::affineGlobalScore(a, b, m, gaps))
        << a.str() << " vs " << b.str() << " open " << gaps.open
        << " extend " << gaps.extend;
    EXPECT_EQ(raced.latencyCycles,
              static_cast<sim::Tick>(raced.score))
        << "score is read off the clock";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineRaceVsDp,
                         ::testing::Range(0, 20));

TEST(AffineRace, LatticeShape)
{
    ScoreMatrix m = pairCosts(1, 2);
    auto g = bio::makeAffineEditGraph(dna("ACG"), dna("AC"), m,
                                      AffineGapCosts{3, 1});
    // 3 layers of 4 x 3 nodes + the sink.
    EXPECT_EQ(g.dag.nodeCount(), 3u * 4 * 3 + 1);
    // The DP solution over the lattice agrees with Gotoh directly.
    auto dp = graph::solveDag(g.dag, {g.source},
                              graph::Objective::Shortest);
    EXPECT_EQ(dp.distance[g.sink],
              bio::affineGlobalScore(dna("ACG"), dna("AC"), m,
                                     AffineGapCosts{3, 1}));
}

TEST(AffineRaceDeath, RejectsZeroExtend)
{
    ScoreMatrix m = pairCosts(1, 2);
    EXPECT_DEATH(bio::affineGlobalScore(dna("A"), dna("A"), m,
                                        AffineGapCosts{2, 0}),
                 "open/extend");
}

TEST(AffineRaceDeath, RejectsSimilarityMatrix)
{
    EXPECT_DEATH(bio::affineGlobalScore(
                     Sequence(Alphabet::protein(), "AR"),
                     Sequence(Alphabet::protein(), "AR"),
                     ScoreMatrix::blosum62(), AffineGapCosts{2, 1}),
                 "minimizes");
}

} // namespace
