/**
 * @file
 * Chaos suite: the full daemon under seeded fault schedules.
 *
 * Each schedule installs a deterministic FaultInjector (short I/O,
 * injected delays, connections severed at drawn byte offsets) under
 * every socket in the process -- the daemon's *and* the client's --
 * and drives a retrying client workload through it.  The claims, per
 * schedule:
 *
 *  1. no hang: the whole schedule finishes inside a hard wall-clock
 *     bound (timeouts + retries, never a pinned thread);
 *  2. no crash: the daemon survives to a clean stop();
 *  3. ledger coherence: after the drain, enqueued == completed +
 *     queued + inflight + shedDeadline + shedEvicted, every frame
 *     accounted;
 *  4. fidelity: every response that *does* survive the chaos is
 *     bit-identical to a direct api::RaceEngine solve of the same
 *     problem -- faults may lose answers, never corrupt them.
 *
 * The workload sets no wire deadlines: a cancelled race would
 * legitimately differ from a direct solve, and this suite is about
 * transport faults, not deadline semantics (serve_server_test covers
 * those).
 *
 * A second suite fires SIGHUP-equivalent graph reloads (valid swaps
 * and broken candidates, interleaving drawn from the seed) into the
 * middle of a live graph-align workload and pins the hot-swap
 * contract: no request is ever dropped by a reload, every answer is
 * bit-identical to a direct solve against one of the two known graph
 * versions (in-flight solves stay pinned to the version they admitted
 * under), and failed reloads leave the serving graph untouched.
 *
 * CI's smoke step runs one schedule via --gtest_filter; this file
 * runs twenty plus the reload schedules.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rl/api/api.h"
#include "rl/pangraph/gfa.h"
#include "rl/serve/client.h"
#include "rl/serve/fault.h"
#include "rl/serve/server.h"
#include "rl/serve/shard.h"

namespace {

using namespace racelogic;
using namespace racelogic::serve;
using Status = racelogic::serve::Status; // not rl::Status (library errors)

bio::ScoreMatrix
fig2b()
{
    return bio::ScoreMatrix::dnaShortestPath();
}

std::shared_ptr<const pangraph::VariationGraph>
bubbleGraph()
{
    const std::string gfa = "H\tVN:Z:1.0\n"
                            "S\ts1\tACG\n"
                            "S\ts2\tT\n"
                            "S\ts3\tC\n"
                            "S\ts4\tGGA\n"
                            "L\ts1\t+\ts2\t+\t0M\n"
                            "L\ts1\t+\ts3\t+\t0M\n"
                            "L\ts2\t+\ts4\t+\t0M\n"
                            "L\ts3\t+\ts4\t+\t0M\n";
    std::istringstream in(gfa);
    return std::make_shared<pangraph::VariationGraph>(
        pangraph::readGfa(in, bio::Alphabet("ACGT")));
}

std::string
dnaString(size_t length, uint32_t seed)
{
    static const char letters[] = "ACGT";
    std::string s;
    s.reserve(length);
    uint32_t state = seed * 2654435761u + 1;
    for (size_t i = 0; i < length; ++i) {
        state = state * 1664525u + 1013904223u;
        s.push_back(letters[(state >> 24) & 3]);
    }
    return s;
}

/** One request of the chaos workload, with its direct-solve twin. */
struct ChaosCase {
    std::vector<uint8_t> payload;   ///< encoded request (no deadline)
    api::RaceProblem problem;       ///< the same problem, direct
};

class ServeChaosTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ServeChaosTest, ScheduleRunsCleanAndFaithful)
{
    const uint32_t seed = GetParam();
    const auto start = std::chrono::steady_clock::now();

    auto graph = bubbleGraph();

    // The fault schedule, entirely derived from the seed.
    FaultConfig faults;
    faults.seed = seed;
    faults.shortIoProbability = 0.3;
    faults.delayProbability = 0.2;
    faults.delayMaxMicros = 500;
    faults.dropProbability = 0.25 + 0.02 * (seed % 5);
    faults.dropMinBytes = 32;
    faults.dropMaxBytes = 2048;
    FaultInjector injector(faults);
    FaultInjector::install(&injector);

    ServerConfig cfg;
    cfg.tcpPort = 0;
    cfg.workers = 2;
    cfg.queueDepth = 16;
    cfg.ioTimeoutMs = 500;
    cfg.graph = graph;
    cfg.graphMatrix = fig2b();
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());

    // Twelve deterministic problems per schedule, mixed kinds.
    std::vector<ChaosCase> cases;
    for (uint32_t i = 0; i < 12; ++i) {
        const uint32_t id = 100 + i;
        const std::string a = dnaString(24 + 3 * i, seed * 97 + i);
        const std::string b = dnaString(24 + 2 * i, seed * 131 + i);
        switch (i % 3) {
        case 0:
            cases.push_back(
                {encodePairwise(id, fig2b(), a, b),
                 api::RaceProblem::pairwiseAlignment(
                     fig2b(), bio::Sequence(bio::Alphabet("ACGT"), a),
                     bio::Sequence(bio::Alphabet("ACGT"), b))});
            break;
        case 1:
            cases.push_back(
                {encodeScreen(id, fig2b(), 12, a, b),
                 api::RaceProblem::thresholdScreen(
                     fig2b(), 12,
                     bio::Sequence(bio::Alphabet("ACGT"), a),
                     bio::Sequence(bio::Alphabet("ACGT"), b))});
            break;
        default: {
            const std::string read = dnaString(6, seed * 17 + i);
            cases.push_back(
                {encodeGraphAlign(id, read, bio::kScoreInfinity),
                 api::RaceProblem::graphAlign(
                     fig2b(),
                     bio::Sequence(bio::Alphabet("ACGT"), read), graph,
                     bio::kScoreInfinity)});
            break;
        }
        }
    }

    // Drive the workload through the faulty transport: per-request
    // timeouts, seeded backoff, reconnect on severed connections.
    ServeClient client = ServeClient::overTcp(server.port(), 2000);
    RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.timeoutMs = 2000;
    policy.backoffBaseMs = 5;
    policy.backoffMaxMs = 50;
    policy.jitterSeed = seed;

    std::vector<Response> survived(cases.size());
    std::vector<bool> gotOk(cases.size(), false);
    for (size_t i = 0; i < cases.size(); ++i) {
        Response response;
        if (client.call(cases[i].payload, response, policy) &&
            response.status == Status::Ok) {
            survived[i] = response;
            gotOk[i] = true;
        }
    }

    server.stop();
    FaultInjector::install(nullptr);

    // 1. No hang: schedule bounded in wall clock (generous, but a
    //    pinned thread would blow straight through it).
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed, 60000) << "chaos schedule " << seed
                              << " took implausibly long";

    // 3. Ledger coherence after the drain: nothing outstanding,
    //    every admitted frame accounted for exactly once.
    const QueueStats stats = server.queueStats();
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_EQ(stats.inflight, 0u);
    EXPECT_EQ(stats.enqueued, stats.completed + stats.queued +
                                  stats.inflight + stats.shedDeadline +
                                  stats.shedEvicted);
    EXPECT_EQ(stats.shedDeadline, 0u)
        << "no wire deadlines were set, so nothing may be shed";
    EXPECT_EQ(stats.shedEvicted, 0u)
        << "a single-class workload has no lower class to evict";

    // 3b. Telemetry coherence after the drain: every retired job
    //     recorded exactly one end-to-end latency sample, so the
    //     histogram's count matches the queue's completed ledger, and
    //     the synthetic queue series mirror the same snapshot.
    const telemetry::Snapshot snap = server.metricsSnapshot();
    const telemetry::HistogramSnapshot *e2e =
        snap.histogram("rl_serve_request_us");
    ASSERT_NE(e2e, nullptr);
    EXPECT_EQ(e2e->count, stats.completed)
        << "raced latency samples must match the completed ledger";
    const telemetry::CounterSnapshot *completedSeries =
        snap.counter("rl_queue_completed_total");
    ASSERT_NE(completedSeries, nullptr);
    EXPECT_EQ(completedSeries->value, stats.completed);

    // 4. Fidelity: surviving responses are bit-identical to direct
    //    engine solves of the same problems.
    api::EngineConfig directConfig;
    directConfig.workerThreads = 1;
    api::RaceEngine direct(directConfig);
    for (size_t i = 0; i < cases.size(); ++i) {
        if (!gotOk[i])
            continue;
        ASSERT_TRUE(survived[i].solve.has_value())
            << "Ok response without a solve body (case " << i << ")";
        const api::RaceResult expected = direct.solve(cases[i].problem);
        const SolveReply &got = *survived[i].solve;
        EXPECT_EQ(got.score, expected.score) << "case " << i;
        EXPECT_EQ(got.racedCost, expected.racedCost) << "case " << i;
        EXPECT_EQ(got.latencyCycles,
                  static_cast<uint64_t>(expected.latencyCycles))
            << "case " << i;
        EXPECT_EQ(got.cyclesUsed,
                  static_cast<uint64_t>(expected.cyclesUsed))
            << "case " << i;
        EXPECT_EQ(got.events, expected.events) << "case " << i;
        EXPECT_EQ(got.nodes, expected.nodes) << "case " << i;
        EXPECT_EQ(got.cellsFired, expected.cellsFired) << "case " << i;
        EXPECT_EQ(got.completed, expected.completed) << "case " << i;
        EXPECT_EQ(got.accepted, expected.accepted) << "case " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ServeChaosTest,
                         ::testing::Range(1u, 21u));

// ------------------------------------------------- reload under fire

/** Same alphabet as bubbleGraph(), different spine: reload-compatible
 *  but alignment scores differ, so version swaps are observable. */
std::shared_ptr<const pangraph::VariationGraph>
forkGraph()
{
    const std::string gfa = "H\tVN:Z:1.0\n"
                            "S\ts1\tAAC\n"
                            "S\ts2\tGG\n"
                            "S\ts3\tTT\n"
                            "S\ts4\tCAA\n"
                            "L\ts1\t+\ts2\t+\t0M\n"
                            "L\ts1\t+\ts3\t+\t0M\n"
                            "L\ts2\t+\ts4\t+\t0M\n"
                            "L\ts3\t+\ts4\t+\t0M\n";
    std::istringstream in(gfa);
    return std::make_shared<pangraph::VariationGraph>(
        pangraph::readGfa(in, bio::Alphabet("ACGT")));
}

/** A structurally fine graph over the wrong alphabet: the "broken
 *  GFA" reload candidate -- it parses, but can never serve alongside
 *  the daemon's ACGT score matrix. */
/** Two-segment chains spelled from the seed: a cheap family of
 * distinct graph fingerprints for shard-routing searches. */
std::shared_ptr<const pangraph::VariationGraph>
chainGraph(uint32_t seed)
{
    const std::string a = dnaString(4, seed * 7 + 1);
    const std::string b = dnaString(4, seed * 13 + 5);
    const std::string gfa = "H\tVN:Z:1.0\n"
                            "S\ts1\t" + a + "\n"
                            "S\ts2\t" + b + "\n"
                            "L\ts1\t+\ts2\t+\t0M\n";
    std::istringstream in(gfa);
    return std::make_shared<pangraph::VariationGraph>(
        pangraph::readGfa(in, bio::Alphabet("ACGT")));
}

std::shared_ptr<const pangraph::VariationGraph>
foreignAlphabetGraph()
{
    const std::string gfa = "H\tVN:Z:1.0\n"
                            "S\ts1\tAC\n"
                            "S\ts2\tGA\n"
                            "L\ts1\t+\ts2\t+\t0M\n";
    std::istringstream in(gfa);
    return std::make_shared<pangraph::VariationGraph>(
        pangraph::readGfa(in, bio::Alphabet("ACG")));
}

class ReloadChaosTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ReloadChaosTest, HotSwapMidTrafficDropsNothing)
{
    const uint32_t seed = GetParam();
    const auto start = std::chrono::steady_clock::now();

    auto vOne = bubbleGraph();
    auto vTwo = forkGraph();

    ServerConfig cfg;
    cfg.tcpPort = 0;
    cfg.workers = 2;
    cfg.queueDepth = 16;
    cfg.graph = vOne;
    cfg.graphMatrix = fig2b();
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());

    // A reloader thread plays the SIGHUP role with a seeded cadence:
    // valid swaps to the fork graph, broken candidates (null and
    // alphabet-mismatched), valid swaps back.  Outcomes are collected
    // and asserted on the main thread after the join.
    std::atomic<bool> done{false};
    std::atomic<uint32_t> validReloads{0};
    std::atomic<uint32_t> validFailures{0};
    std::atomic<uint32_t> brokenAccepted{0};
    std::thread reloader([&] {
        uint32_t state = seed * 2654435761u + 1;
        size_t round = 0;
        while (!done.load(std::memory_order_acquire)) {
            state = state * 1664525u + 1013904223u;
            std::this_thread::sleep_for(
                std::chrono::microseconds(100 + state % 900));
            switch (round++ % 4) {
            case 0:
            case 2: {
                const racelogic::Status swap = server.reloadGraph(
                    (round / 2) % 2 ? vTwo : vOne);
                if (swap.ok())
                    validReloads.fetch_add(1);
                else
                    validFailures.fetch_add(1);
                break;
            }
            case 1:
                if (server.reloadGraph(nullptr).ok())
                    brokenAccepted.fetch_add(1);
                break;
            default:
                if (server.reloadGraph(foreignAlphabetGraph()).ok())
                    brokenAccepted.fetch_add(1);
                break;
            }
        }
    });

    // The workload: graph-align reads, no deadlines, no transport
    // faults -- every single request must come back Ok, whatever the
    // reloader is doing.  Each answer must be bit-identical to a
    // direct solve against one of the two known versions (a solve
    // admitted under v1 finishes on v1 even if the swap lands
    // mid-race).
    api::EngineConfig directConfig;
    directConfig.workerThreads = 1;
    api::RaceEngine direct(directConfig);
    const auto directSolve = [&](const std::shared_ptr<
                                     const pangraph::VariationGraph> &g,
                                 const std::string &read) {
        return direct.solve(api::RaceProblem::graphAlign(
            fig2b(), bio::Sequence(bio::Alphabet("ACGT"), read), g,
            bio::kScoreInfinity));
    };
    const auto matches = [](const SolveReply &got,
                            const api::RaceResult &want) {
        return got.score == want.score &&
               got.racedCost == want.racedCost &&
               got.latencyCycles ==
                   static_cast<uint64_t>(want.latencyCycles) &&
               got.events == want.events && got.nodes == want.nodes &&
               got.cellsFired == want.cellsFired &&
               got.completed == want.completed &&
               got.accepted == want.accepted;
    };

    ServeClient client = ServeClient::overTcp(server.port(), 4000);
    constexpr size_t kRequests = 48;
    size_t answered = 0;
    for (size_t i = 0; i < kRequests; ++i) {
        const std::string read = dnaString(5 + i % 4, seed * 29 + i);
        ASSERT_TRUE(client.submitGraphAlign(
            static_cast<uint32_t>(100 + i), read, bio::kScoreInfinity));
        Response response;
        ASSERT_TRUE(client.receive(response)) << "request " << i;
        ASSERT_EQ(response.status, Status::Ok) << "request " << i;
        ASSERT_TRUE(response.solve.has_value()) << "request " << i;
        ++answered;
        const bool onOld = matches(*response.solve,
                                   directSolve(vOne, read));
        const bool onNew = matches(*response.solve,
                                   directSolve(vTwo, read));
        EXPECT_TRUE(onOld || onNew)
            << "request " << i
            << " matches neither graph version bit-for-bit";
    }

    done.store(true, std::memory_order_release);
    reloader.join();
    server.stop();

    // No hang, no drop, nothing evicted or shed: a reload must never
    // cost an admitted request.
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed, 60000);
    EXPECT_EQ(answered, kRequests);
    EXPECT_EQ(brokenAccepted.load(), 0u)
        << "a broken reload candidate must be rejected";
    EXPECT_EQ(validFailures.load(), 0u)
        << "a well-formed same-alphabet swap must succeed";
    EXPECT_GT(validReloads.load(), 0u)
        << "the schedule must actually exercise a swap";

    const QueueStats stats = server.queueStats();
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_EQ(stats.inflight, 0u);
    EXPECT_EQ(stats.completed, kRequests);
    EXPECT_EQ(stats.enqueued, stats.completed + stats.queued +
                                  stats.inflight + stats.shedDeadline +
                                  stats.shedEvicted);
    EXPECT_EQ(stats.shedDeadline, 0u);
    EXPECT_EQ(stats.shedEvicted, 0u);
}

INSTANTIATE_TEST_SUITE_P(ReloadSchedules, ReloadChaosTest,
                         ::testing::Range(1u, 6u));

// Regression: setGraph() used to take the daemon-wide build mutex and
// then each shard's engine mutex, while a plan-miss solve holds its
// shard's engine mutex and then takes the build mutex -- a textbook
// ABBA deadlock whenever a reload landed during a miss.  Two solver
// threads make the wedge near-certain on the old order: while the
// reloader (holding the build mutex) waits out one solver's engine
// mutex, the other solver misses, takes its own engine mutex, and
// parks on the build mutex -- exactly the shard the reloader's
// eviction sweep visits next.  The suite-level no-hang bound is the
// assertion.
TEST(EngineShards, ReloadNeverDeadlocksAgainstPlanMissSolves)
{
    auto vOne = bubbleGraph();
    auto matrix = std::make_shared<bio::ScoreMatrix>(fig2b());

    api::EngineConfig config;
    EngineShards shards(2, config);
    shards.setGraph(vOne, matrix);

    // The wedge needs the two shapes on *different* shards (the
    // reloader's sweep must reach a shard whose solver is already
    // parked on the build mutex).  Routing hashes the graph
    // fingerprint, so search a small generated family for a shape
    // that lands opposite vOne.
    const bio::Sequence probeRead(bio::Alphabet("ACGT"), "ACGTGA");
    const size_t shardOne = shards.shardFor(
        api::RaceProblem::graphAlign(fig2b(), probeRead, vOne));
    std::shared_ptr<const pangraph::VariationGraph> vTwo = forkGraph();
    for (uint32_t i = 0;
         shards.shardFor(api::RaceProblem::graphAlign(fig2b(), probeRead,
                                                      vTwo)) == shardOne &&
         i < 32;
         ++i)
        vTwo = chainGraph(i);
    ASSERT_NE(shards.shardFor(
                  api::RaceProblem::graphAlign(fig2b(), probeRead, vTwo)),
              shardOne);

    // Each solver hammers one graph's shape, so its shard misses
    // afresh after every swap's eviction.  Concurrent solves on the
    // same shard are outside the dispatcher's normal schedule but
    // explicitly safe (engineMutex serializes them), so the test
    // holds regardless of which shard each shape hashes to.
    std::atomic<bool> done{false};
    std::atomic<uint32_t> solvedOne{0};
    std::atomic<uint32_t> solvedTwo{0};
    auto solverLoop = [&](std::shared_ptr<const pangraph::VariationGraph>
                              graph,
                          std::atomic<uint32_t> &solved) {
        const bio::Sequence read(bio::Alphabet("ACGT"), "ACGTGA");
        while (!done.load(std::memory_order_acquire)) {
            api::RaceProblem problem =
                api::RaceProblem::graphAlign(fig2b(), read, graph);
            Expected<api::RaceResult> result = shards.trySolveOn(
                shards.shardFor(problem), problem);
            EXPECT_TRUE(result.ok());
            solved.fetch_add(1, std::memory_order_relaxed);
        }
    };
    std::thread solverOne([&] { solverLoop(vOne, solvedOne); });
    std::thread solverTwo([&] { solverLoop(vTwo, solvedTwo); });

    // Don't start swapping until both solvers are demonstrably
    // racing: 200 back-to-back reloads finish in microseconds, so an
    // unsynced start could complete every swap before the first miss
    // and never interleave the two lock paths at all.
    while (solvedOne.load(std::memory_order_relaxed) == 0 ||
           solvedTwo.load(std::memory_order_relaxed) == 0)
        std::this_thread::yield();
    for (uint32_t round = 0; round < 200; ++round)
        shards.setGraph((round % 2) ? vTwo : vOne, matrix);
    done.store(true, std::memory_order_release);
    solverOne.join();
    solverTwo.join();

    EXPECT_EQ(shards.graphVersion(), 201u);
    EXPECT_GT(solvedOne.load(), 0u);
    EXPECT_GT(solvedTwo.load(), 0u);
}

} // namespace
