/**
 * @file
 * Wire-protocol tests: round trips for every request/response kind,
 * and -- the part the daemon's life depends on -- the failure paths.
 * Decoding must be total: every mangled byte string below maps to a
 * typed WireError, never a crash, an assert, or an out-of-bounds
 * read (the sanitize CI job runs these under ASan/UBSan).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rl/serve/wire.h"

namespace {

using namespace racelogic;
using namespace racelogic::serve;
using Status = racelogic::serve::Status; // not rl::Status (library errors)

const bio::Alphabet &
dna()
{
    static const bio::Alphabet a("ACGT");
    return a;
}

bio::ScoreMatrix
fig2b()
{
    return bio::ScoreMatrix::dnaShortestPath();
}

WireError
decode(const std::vector<uint8_t> &payload, Request &out)
{
    return decodeRequest(payload, dna(), out);
}

// ----------------------------------------------------- request round trips

TEST(ServeWire, PairwiseRoundTrip)
{
    auto payload = encodePairwise(7, fig2b(), "GATTACA", "GCATGCT");
    Request req;
    ASSERT_EQ(decode(payload, req), WireError::None);
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.tag, RequestTag::Pairwise);
    ASSERT_TRUE(req.matrix.has_value());
    EXPECT_EQ(req.matrix->alphabet().letters(), "ACGT");
    EXPECT_EQ(req.matrix->fingerprint(), fig2b().fingerprint());
    ASSERT_TRUE(req.a.has_value());
    EXPECT_EQ(req.a->str(), "GATTACA");
    EXPECT_EQ(req.b->str(), "GCATGCT");
}

TEST(ServeWire, ScreenCarriesThreshold)
{
    auto payload = encodeScreen(9, fig2b(), 5, "ACGT", "ACGA");
    Request req;
    ASSERT_EQ(decode(payload, req), WireError::None);
    EXPECT_EQ(req.tag, RequestTag::Screen);
    EXPECT_EQ(req.threshold, 5);
}

TEST(ServeWire, AffineCarriesGapCosts)
{
    auto payload = encodeAffine(3, fig2b(), 4, 2, "ACGT", "AGT");
    Request req;
    ASSERT_EQ(decode(payload, req), WireError::None);
    EXPECT_EQ(req.tag, RequestTag::Affine);
    EXPECT_EQ(req.open, 4);
    EXPECT_EQ(req.extend, 2);
}

TEST(ServeWire, DtwRoundTrip)
{
    std::vector<apps::Sample> x{0, 3, 7, 2}, y{1, 3, 6};
    auto payload = encodeDtw(11, x, y);
    Request req;
    ASSERT_EQ(decode(payload, req), WireError::None);
    EXPECT_EQ(req.tag, RequestTag::Dtw);
    EXPECT_EQ(req.x, x);
    EXPECT_EQ(req.y, y);
}

TEST(ServeWire, GraphAlignUsesGraphAlphabet)
{
    auto payload = encodeGraphAlign(2, "ACCA", bio::kScoreInfinity);
    Request req;
    ASSERT_EQ(decode(payload, req), WireError::None);
    EXPECT_EQ(req.tag, RequestTag::GraphAlign);
    EXPECT_EQ(req.threshold, bio::kScoreInfinity);
    EXPECT_EQ(req.read->str(), "ACCA");
}

TEST(ServeWire, MapReadsParsesFasta)
{
    const std::string fasta = "; a comment\n"
                              ">read1 description\n"
                              "ACGT\nacgt\n"
                              "\r\n"
                              ">read2\n"
                              "TT AA\n";
    auto payload = encodeMapReads(4, fasta, 10);
    Request req;
    ASSERT_EQ(decode(payload, req), WireError::None);
    ASSERT_EQ(req.reads.size(), 2u);
    EXPECT_EQ(req.reads[0].str(), "ACGTACGT");
    EXPECT_EQ(req.reads[1].str(), "TTAA");
}

TEST(ServeWire, StatsAndPingAreBare)
{
    Request req;
    ASSERT_EQ(decode(encodeStatsRequest(1), req), WireError::None);
    EXPECT_EQ(req.tag, RequestTag::Stats);
    ASSERT_EQ(decode(encodePing(2), req), WireError::None);
    EXPECT_EQ(req.tag, RequestTag::Ping);
    ASSERT_EQ(decode(encodeMetricsRequest(3), req), WireError::None);
    EXPECT_EQ(req.tag, RequestTag::Metrics);
    EXPECT_EQ(req.id, 3u);
}

TEST(ServeWire, DeadlineRidesTheHeader)
{
    auto payload = encodePairwise(7, fig2b(), "GATTACA", "GCATGCT", 1500);
    Request req;
    ASSERT_EQ(decode(payload, req), WireError::None);
    EXPECT_EQ(req.deadlineMs, 1500u);

    // Omitted deadline decodes as "none".
    auto bare = encodeScreen(9, fig2b(), 5, "ACGT", "ACGA");
    ASSERT_EQ(decode(bare, req), WireError::None);
    EXPECT_EQ(req.deadlineMs, 0u);
}

TEST(ServeWire, DeadlineCarriedByEveryRequestKind)
{
    Request req;
    ASSERT_EQ(decode(encodeAffine(1, fig2b(), 4, 2, "ACGT", "AGT", 30),
                     req),
              WireError::None);
    EXPECT_EQ(req.deadlineMs, 30u);
    ASSERT_EQ(decode(encodeDtw(2, {0, 3}, {1, 3}, 40), req),
              WireError::None);
    EXPECT_EQ(req.deadlineMs, 40u);
    ASSERT_EQ(decode(encodeGraphAlign(3, "ACCA", 5, 50), req),
              WireError::None);
    EXPECT_EQ(req.deadlineMs, 50u);
    ASSERT_EQ(decode(encodeMapReads(4, ">r\nACGT\n", 5, 60), req),
              WireError::None);
    EXPECT_EQ(req.deadlineMs, 60u);
}

TEST(ServeWire, PriorityRidesTheHeader)
{
    // Every submitter takes a trailing priority; omitted means Normal.
    Request req;
    ASSERT_EQ(decode(encodePairwise(1, fig2b(), "AC", "GT", 0,
                                    Priority::Interactive),
                     req),
              WireError::None);
    EXPECT_EQ(req.priority, Priority::Interactive);
    ASSERT_EQ(decode(encodeDtw(2, {0, 3}, {1, 3}, 0, Priority::Batch),
                     req),
              WireError::None);
    EXPECT_EQ(req.priority, Priority::Batch);
    ASSERT_EQ(decode(encodeGraphAlign(3, "ACCA", 5), req),
              WireError::None);
    EXPECT_EQ(req.priority, Priority::Normal);
    EXPECT_STREQ(priorityName(Priority::Interactive), "interactive");
}

TEST(ServeWire, OutOfRangePriorityIsBadRequest)
{
    auto payload = encodePing(4);
    // The priority byte sits 4 (id) + 1 (tag) + 4 (deadline) in.
    payload[4 + 1 + 4] = 7;
    Request req;
    EXPECT_EQ(decode(payload, req), WireError::BadRequest);
}

TEST(ServeWire, HealthRequestIsBare)
{
    Request req;
    ASSERT_EQ(decode(encodeHealthRequest(6), req), WireError::None);
    EXPECT_EQ(req.tag, RequestTag::Health);
    EXPECT_EQ(req.id, 6u);
}

TEST(ServeWire, HealthResponseRoundTrip)
{
    Response out;
    out.id = 6;
    out.tag = RequestTag::Health;
    HealthReply h;
    h.state = HealthState::Brownout;
    h.uptimeMs = 123456;
    h.graphVersion = 3;
    out.health = h;

    Response in;
    ASSERT_EQ(decodeResponse(encodeResponse(out), in), WireError::None);
    ASSERT_TRUE(in.health.has_value());
    EXPECT_EQ(in.health->state, HealthState::Brownout);
    EXPECT_EQ(in.health->uptimeMs, 123456u);
    EXPECT_EQ(in.health->graphVersion, 3u);
    EXPECT_STREQ(healthStateName(HealthState::Brownout), "brownout");
}

// ---------------------------------------------------- response round trips

TEST(ServeWire, SolveResponseRoundTrip)
{
    Response out;
    out.id = 12;
    out.tag = RequestTag::Pairwise;
    SolveReply s;
    s.score = -3;
    s.racedCost = 9;
    s.latencyCycles = 14;
    s.cyclesUsed = 14;
    s.events = 120;
    s.nodes = 64;
    s.cellsFired = 60;
    s.completed = true;
    s.accepted = true;
    out.solve = s;

    Response in;
    ASSERT_EQ(decodeResponse(encodeResponse(out), in), WireError::None);
    EXPECT_EQ(in.id, 12u);
    EXPECT_EQ(in.status, Status::Ok);
    ASSERT_TRUE(in.solve.has_value());
    EXPECT_EQ(in.solve->score, -3);
    EXPECT_EQ(in.solve->racedCost, 9);
    EXPECT_EQ(in.solve->latencyCycles, 14u);
    EXPECT_EQ(in.solve->events, 120u);
    EXPECT_TRUE(in.solve->completed);
}

TEST(ServeWire, ErrorResponseCarriesMessageOnly)
{
    Response out;
    out.id = 5;
    out.tag = RequestTag::Dtw;
    out.status = Status::QueueFull;
    out.message = "admission queue at depth";

    Response in;
    ASSERT_EQ(decodeResponse(encodeResponse(out), in), WireError::None);
    EXPECT_EQ(in.status, Status::QueueFull);
    EXPECT_EQ(in.message, "admission queue at depth");
    EXPECT_FALSE(in.solve.has_value());
}

TEST(ServeWire, StatsResponseRoundTrip)
{
    Response out;
    out.id = 1;
    out.tag = RequestTag::Stats;
    QueueStatsWire q;
    q.enqueued = 10;
    q.completed = 7;
    q.rejectedQueueFull = 2;
    q.shedDeadline = 1;
    q.shedEvicted = 3;
    q.highWater = 4;
    q.classes[2].enqueued = 6;
    q.classes[2].completed = 5;
    q.classes[0].shedEvicted = 3;
    q.classes[0].rejectedResource = 2;
    out.queueStats = q;
    ShardStatsWire s;
    s.solves = 8;
    s.shardHits = 6;
    s.buildLocks = 2;
    out.shardStats = {s, s};

    Response in;
    ASSERT_EQ(decodeResponse(encodeResponse(out), in), WireError::None);
    ASSERT_TRUE(in.queueStats.has_value());
    EXPECT_EQ(in.queueStats->enqueued, 10u);
    EXPECT_EQ(in.queueStats->rejectedQueueFull, 2u);
    EXPECT_EQ(in.queueStats->shedDeadline, 1u);
    EXPECT_EQ(in.queueStats->shedEvicted, 3u);
    EXPECT_EQ(in.queueStats->classes[2].enqueued, 6u);
    EXPECT_EQ(in.queueStats->classes[2].completed, 5u);
    EXPECT_EQ(in.queueStats->classes[0].shedEvicted, 3u);
    EXPECT_EQ(in.queueStats->classes[0].rejectedResource, 2u);
    ASSERT_EQ(in.shardStats.size(), 2u);
    EXPECT_EQ(in.shardStats[1].shardHits, 6u);
}

TEST(ServeWire, MetricsResponseRoundTrip)
{
    Response out;
    out.id = 9;
    out.tag = RequestTag::Metrics;
    telemetry::Snapshot snap;
    snap.counters.push_back({"rl_serve_requests_total", 42});
    snap.counters.push_back({"rl_queue_completed_total", 40});
    snap.gauges.push_back({"rl_kernel_scratch_high_water", -3});
    telemetry::HistogramSnapshot h;
    h.name = "rl_serve_request_us";
    h.buckets.assign(telemetry::kHistogramBuckets, 0);
    h.buckets[0] = 5;
    h.buckets[11] = 7;
    h.count = 12;
    h.sum = 14336;
    snap.histograms.push_back(h);
    out.metrics = std::move(snap);

    Response in;
    ASSERT_EQ(decodeResponse(encodeResponse(out), in), WireError::None);
    EXPECT_EQ(in.tag, RequestTag::Metrics);
    ASSERT_TRUE(in.metrics.has_value());
    const telemetry::CounterSnapshot *requests =
        in.metrics->counter("rl_serve_requests_total");
    ASSERT_NE(requests, nullptr);
    EXPECT_EQ(requests->value, 42u);
    const telemetry::GaugeSnapshot *gauge =
        in.metrics->gauge("rl_kernel_scratch_high_water");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->value, -3);
    const telemetry::HistogramSnapshot *hist =
        in.metrics->histogram("rl_serve_request_us");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 12u);
    EXPECT_EQ(hist->sum, 14336u);
    ASSERT_EQ(hist->buckets.size(), telemetry::kHistogramBuckets);
    EXPECT_EQ(hist->buckets[11], 7u);
}

TEST(ServeWire, MetricsResponseNameCapIsEnforced)
{
    Response out;
    out.id = 10;
    out.tag = RequestTag::Metrics;
    telemetry::Snapshot snap;
    snap.counters.push_back(
        {std::string(kMaxWireMetricName + 1, 'x'), 1});
    out.metrics = std::move(snap);

    // Same convention as every capped string on the wire: a name
    // over the admission cap reads as a typed truncation, never an
    // out-of-bounds walk.
    Response in;
    EXPECT_EQ(decodeResponse(encodeResponse(out), in),
              WireError::Truncated);
}

TEST(ServeWire, DeadlineExceededResponseRoundTrip)
{
    Response out;
    out.id = 12;
    out.tag = RequestTag::GraphAlign;
    out.status = Status::DeadlineExceeded;
    out.message = "deadline expired while queued";

    Response in;
    ASSERT_EQ(decodeResponse(encodeResponse(out), in), WireError::None);
    EXPECT_EQ(in.status, Status::DeadlineExceeded);
    EXPECT_EQ(in.message, "deadline expired while queued");
    EXPECT_FALSE(in.solve.has_value());
    EXPECT_STREQ(statusName(Status::DeadlineExceeded),
                 "deadline-exceeded");
}

// --------------------------------------------------------- failure paths

TEST(ServeWire, EmptyPayloadIsTruncated)
{
    Request req;
    EXPECT_EQ(decode({}, req), WireError::Truncated);
}

TEST(ServeWire, EveryPrefixTruncationIsTyped)
{
    // Chop a valid frame at every length: each prefix must decode to
    // a typed error (never crash), and most to Truncated.
    auto payload = encodeScreen(21, fig2b(), 6, "GATTACA", "GCATGCT");
    for (size_t cut = 0; cut < payload.size(); ++cut) {
        std::vector<uint8_t> prefix(payload.begin(),
                                    payload.begin() + cut);
        Request req;
        EXPECT_NE(decode(prefix, req), WireError::None)
            << "prefix of " << cut << " bytes decoded successfully";
    }
}

TEST(ServeWire, UnknownTagIsTyped)
{
    std::vector<uint8_t> payload = {1, 0, 0, 0, 99};
    Request req;
    EXPECT_EQ(decode(payload, req), WireError::UnknownKind);
    EXPECT_EQ(req.id, 1u); // id still recovered for the error reply
}

TEST(ServeWire, TrailingGarbageIsBadRequest)
{
    auto payload = encodePing(3);
    payload.push_back(0xFF);
    Request req;
    EXPECT_EQ(decode(payload, req), WireError::BadRequest);
}

TEST(ServeWire, ForeignLettersAreBadRequest)
{
    auto payload = encodePairwise(1, fig2b(), "ACGT", "ACGX");
    Request req;
    EXPECT_EQ(decode(payload, req), WireError::BadRequest);
}

TEST(ServeWire, ZeroWeightMatrixIsBadRequest)
{
    // match = 0 breaks the grid kernel's minFinite() >= 1 contract;
    // the wire layer must reject it before the engine can assert.
    auto payload =
        encodePairwise(1, bio::ScoreMatrix::unitEdit(dna()), "AC", "GT");
    Request req;
    EXPECT_EQ(decode(payload, req), WireError::BadRequest);
}

TEST(ServeWire, InfinitePairIsRejectedForAffineOnly)
{
    bio::ScoreMatrix inf = bio::ScoreMatrix::dnaShortestPathInfMismatch();
    Request req;
    EXPECT_EQ(decode(encodePairwise(1, inf, "AC", "GT"), req),
              WireError::None);
    EXPECT_EQ(decode(encodeAffine(1, inf, 4, 2, "AC", "GT"), req),
              WireError::BadRequest);
}

TEST(ServeWire, BadAffineGapOrderIsBadRequest)
{
    // open must be >= extend >= 1.
    Request req;
    EXPECT_EQ(decode(encodeAffine(1, fig2b(), 1, 3, "AC", "GT"), req),
              WireError::BadRequest);
    EXPECT_EQ(decode(encodeAffine(1, fig2b(), 2, 0, "AC", "GT"), req),
              WireError::BadRequest);
}

TEST(ServeWire, NegativeScreenThresholdIsBadRequest)
{
    Request req;
    EXPECT_EQ(decode(encodeScreen(1, fig2b(), -4, "AC", "GT"), req),
              WireError::BadRequest);
}

TEST(ServeWire, EmptyDtwSignalIsBadRequest)
{
    Request req;
    EXPECT_EQ(decode(encodeDtw(1, {}, {1, 2}), req),
              WireError::BadRequest);
}

TEST(ServeWire, OutOfRangeDtwSampleIsBadRequest)
{
    Request req;
    EXPECT_EQ(decode(encodeDtw(1, {kMaxWireSample + 1}, {1}), req),
              WireError::BadRequest);
}

TEST(ServeWire, LyingStringLengthIsTruncated)
{
    // A sequence length prefix that promises more bytes than exist.
    auto payload = encodeGraphAlign(8, "ACGT", 5);
    // The read's length prefix sits 4 (id) + 1 (tag) + 4 (deadline)
    // + 1 (priority) + 8 (threshold) bytes in; bump it far beyond the
    // payload.
    payload[4 + 1 + 4 + 1 + 8] = 0xFF;
    Request req;
    EXPECT_EQ(decode(payload, req), WireError::Truncated);
}

TEST(ServeWire, FastaWithoutHeaderIsBadRequest)
{
    Request req;
    EXPECT_EQ(decode(encodeMapReads(1, "ACGT\n", 5), req),
              WireError::BadRequest);
}

TEST(ServeWire, FastaHeaderWithoutDataIsBadRequest)
{
    Request req;
    EXPECT_EQ(decode(encodeMapReads(1, ">empty\n", 5), req),
              WireError::BadRequest);
    EXPECT_EQ(decode(encodeMapReads(1, "", 5), req),
              WireError::BadRequest);
}

TEST(ServeWire, ResponseTruncationsAreTyped)
{
    Response out;
    out.id = 2;
    out.tag = RequestTag::Stats;
    out.queueStats = QueueStatsWire{};
    out.shardStats = {ShardStatsWire{}};
    auto payload = encodeResponse(out);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
        std::vector<uint8_t> prefix(payload.begin(),
                                    payload.begin() + cut);
        Response in;
        EXPECT_NE(decodeResponse(prefix, in), WireError::None);
    }
}

// ------------------------------------------------------------- framing

TEST(ServeWire, FrameHeaderRoundTrip)
{
    auto framed = frame(encodePing(1));
    uint32_t length = 0;
    ASSERT_EQ(parseFrameHeader(framed.data(), framed.size(),
                               kDefaultMaxFrameBytes, length),
              WireError::None);
    EXPECT_EQ(length, framed.size() - 4);
}

TEST(ServeWire, HostileLengthPrefixIsOversized)
{
    const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    uint32_t length = 0;
    EXPECT_EQ(parseFrameHeader(huge, 4, kDefaultMaxFrameBytes, length),
              WireError::Oversized);
}

TEST(ServeWire, ShortHeaderIsTruncated)
{
    const uint8_t two[2] = {1, 0};
    uint32_t length = 0;
    EXPECT_EQ(parseFrameHeader(two, 2, kDefaultMaxFrameBytes, length),
              WireError::Truncated);
}

} // namespace
