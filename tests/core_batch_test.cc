/**
 * @file
 * Tests for the batch screening engine: scheduling invariants,
 * verdict agreement with the single-fabric screener, and scaling
 * behaviour of the fabric pool.
 */

#include <gtest/gtest.h>

#include "rl/core/batch.h"
#include "rl/core/threshold.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::BatchConfig;
using core::BatchReport;
using core::BatchScreeningEngine;

struct Workload {
    Sequence query;
    std::vector<Sequence> database;
};

Workload
makeWorkload(uint64_t seed, size_t n, size_t entries)
{
    util::Rng rng(seed);
    auto wl = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), n, entries, 0.25,
        bio::MutationModel::uniform(0.1));
    return {wl.query, wl.database};
}

TEST(Batch, SingleFabricMakespanEqualsBusyTime)
{
    Workload wl = makeWorkload(1, 16, 40);
    BatchConfig cfg;
    cfg.fabricCount = 1;
    cfg.threshold = 20;
    BatchScreeningEngine engine(
        ScoreMatrix::dnaShortestPathInfMismatch(), cfg);
    BatchReport report = engine.run(wl.query, wl.database);
    EXPECT_EQ(report.makespanCycles, report.busyCycles);
    EXPECT_DOUBLE_EQ(report.utilization, 1.0);
}

TEST(Batch, MakespanBoundedByListSchedulingInvariants)
{
    Workload wl = makeWorkload(2, 16, 60);
    for (size_t fabrics : {2u, 4u, 8u}) {
        BatchConfig cfg;
        cfg.fabricCount = fabrics;
        cfg.threshold = 24;
        BatchScreeningEngine engine(
            ScoreMatrix::dnaShortestPathInfMismatch(), cfg);
        BatchReport report = engine.run(wl.query, wl.database);
        // Lower bound: perfect division of work.
        EXPECT_GE(report.makespanCycles * fabrics, report.busyCycles);
        // Utilization is a proper fraction.
        EXPECT_GT(report.utilization, 0.0);
        EXPECT_LE(report.utilization, 1.0);
    }
}

TEST(Batch, MoreFabricsNeverSlowTheBatch)
{
    Workload wl = makeWorkload(3, 20, 80);
    uint64_t previous = ~0ull;
    for (size_t fabrics : {1u, 2u, 4u, 8u, 16u}) {
        BatchConfig cfg;
        cfg.fabricCount = fabrics;
        cfg.threshold = 26;
        BatchScreeningEngine engine(
            ScoreMatrix::dnaShortestPathInfMismatch(), cfg);
        uint64_t makespan =
            engine.run(wl.query, wl.database).makespanCycles;
        EXPECT_LE(makespan, previous) << fabrics << " fabrics";
        previous = makespan;
    }
}

TEST(Batch, VerdictsMatchSingleScreener)
{
    Workload wl = makeWorkload(4, 16, 50);
    bio::Score threshold = 22;
    BatchConfig cfg;
    cfg.fabricCount = 4;
    cfg.threshold = threshold;
    BatchScreeningEngine engine(
        ScoreMatrix::dnaShortestPathInfMismatch(), cfg);
    core::ThresholdScreener screener(
        ScoreMatrix::dnaShortestPathInfMismatch(), threshold);
    BatchReport report = engine.run(wl.query, wl.database);
    auto stats = screener.screenDatabase(wl.query, wl.database);
    ASSERT_EQ(report.accepted.size(), stats.accepted.size());
    for (size_t i = 0; i < report.accepted.size(); ++i)
        EXPECT_EQ(report.accepted[i], stats.accepted[i]) << i;
    EXPECT_EQ(report.acceptedCount, stats.acceptedCount);
}

TEST(Batch, ThresholdShortensBusyTime)
{
    Workload wl = makeWorkload(5, 24, 40);
    BatchConfig no_threshold;
    no_threshold.fabricCount = 2;
    BatchConfig tight = no_threshold;
    tight.threshold = 28;
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    uint64_t full =
        BatchScreeningEngine(m, no_threshold)
            .run(wl.query, wl.database)
            .busyCycles;
    uint64_t capped = BatchScreeningEngine(m, tight)
                          .run(wl.query, wl.database)
                          .busyCycles;
    EXPECT_LT(capped, full);
}

TEST(Batch, ThroughputPricing)
{
    Workload wl = makeWorkload(6, 16, 30);
    BatchConfig cfg;
    cfg.fabricCount = 4;
    cfg.threshold = 20;
    BatchScreeningEngine engine(
        ScoreMatrix::dnaShortestPathInfMismatch(), cfg);
    BatchReport report = engine.run(wl.query, wl.database);
    const auto &lib = tech::CellLibrary::amis();
    EXPECT_GT(report.wallTimeNs(lib), 0.0);
    EXPECT_GT(report.comparisonsPerSecond(lib), 0.0);
    // 30 comparisons in makespan cycles at 3 ns each.
    EXPECT_NEAR(report.comparisonsPerSecond(lib),
                30.0 * 1e9 /
                    (double(report.makespanCycles) * lib.racePeriodNs),
                1.0);
}

TEST(Batch, EmptyDatabase)
{
    BatchConfig cfg;
    BatchScreeningEngine engine(
        ScoreMatrix::dnaShortestPathInfMismatch(), cfg);
    Sequence q(Alphabet::dna(), "ACGT");
    BatchReport report = engine.run(q, {});
    EXPECT_EQ(report.comparisons, 0u);
    EXPECT_EQ(report.makespanCycles, 0u);
    EXPECT_EQ(report.utilization, 0.0);
}

} // namespace
