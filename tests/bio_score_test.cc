/**
 * @file
 * Tests for score matrices (Fig. 2), the Section 5 conversion, and
 * the Eq. 8 log-odds machinery.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rl/bio/score_convert.h"
#include "rl/bio/score_matrix.h"
#include "rl/bio/align_dp.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::Score;
using bio::ScoreKind;
using bio::ScoreMatrix;
using bio::Sequence;
using bio::Symbol;

// ------------------------------------------------------- Fig. 2 data

TEST(ScoreMatrix, Fig2aLongestPath)
{
    ScoreMatrix m = ScoreMatrix::dnaLongestPath();
    EXPECT_EQ(m.kind(), ScoreKind::Similarity);
    const Alphabet &dna = m.alphabet();
    for (char x : std::string("ACGT")) {
        for (char y : std::string("ACGT")) {
            Score expect = x == y ? 1 : 0;
            EXPECT_EQ(m.pair(dna.encode(x), dna.encode(y)), expect);
        }
        EXPECT_EQ(m.gap(dna.encode(x)), 0);
    }
}

TEST(ScoreMatrix, Fig2bShortestPath)
{
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    EXPECT_EQ(m.kind(), ScoreKind::Cost);
    const Alphabet &dna = m.alphabet();
    EXPECT_EQ(m.pair(dna.encode('A'), dna.encode('A')), 1);
    EXPECT_EQ(m.pair(dna.encode('A'), dna.encode('C')), 2);
    EXPECT_EQ(m.gap(dna.encode('G')), 1);
    EXPECT_EQ(m.minFinite(), 1);
    EXPECT_EQ(m.maxFinite(), 2);
    EXPECT_EQ(m.dynamicRange(), 2);
    EXPECT_FALSE(m.hasForbiddenPairs());
}

TEST(ScoreMatrix, InfMismatchVariant)
{
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    const Alphabet &dna = m.alphabet();
    EXPECT_EQ(m.pair(dna.encode('A'), dna.encode('A')), 1);
    EXPECT_EQ(m.pair(dna.encode('A'), dna.encode('G')),
              bio::kScoreInfinity);
    EXPECT_TRUE(m.hasForbiddenPairs());
    EXPECT_EQ(m.dynamicRange(), 1);
}

/**
 * The paper: "It is straightforward to check that the original and
 * modified scoring matrixes are equivalent".  Check it on random
 * strings: a cost-2 mismatch can always be re-expressed as
 * delete+insert (1+1), so the optimal scores agree everywhere.
 */
TEST(ScoreMatrix, MismatchTwoEquivalentToInfinity)
{
    util::Rng rng(42);
    ScoreMatrix with2 = ScoreMatrix::dnaShortestPath();
    ScoreMatrix withInf = ScoreMatrix::dnaShortestPathInfMismatch();
    for (int trial = 0; trial < 40; ++trial) {
        size_t n = 1 + rng.index(24);
        size_t m = 1 + rng.index(24);
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), m);
        EXPECT_EQ(bio::globalScore(a, b, with2),
                  bio::globalScore(a, b, withInf));
    }
}

TEST(ScoreMatrix, Blosum62SpotValues)
{
    ScoreMatrix m = ScoreMatrix::blosum62();
    const Alphabet &aa = m.alphabet();
    auto s = [&](char x, char y) {
        return m.pair(aa.encode(x), aa.encode(y));
    };
    // Canonical entries of the published matrix.
    EXPECT_EQ(s('W', 'W'), 11);
    EXPECT_EQ(s('A', 'A'), 4);
    EXPECT_EQ(s('C', 'C'), 9);
    EXPECT_EQ(s('A', 'R'), -1);
    EXPECT_EQ(s('W', 'Y'), 2);
    EXPECT_EQ(s('D', 'E'), 2);
    EXPECT_EQ(s('I', 'V'), 3);
    EXPECT_EQ(s('G', 'I'), -4);
    EXPECT_EQ(m.gap(aa.encode('A')), -4);
}

TEST(ScoreMatrix, Blosum62IsSymmetric)
{
    EXPECT_TRUE(ScoreMatrix::blosum62().isSymmetric());
}

TEST(ScoreMatrix, Pam250SpotValuesAndSymmetry)
{
    ScoreMatrix m = ScoreMatrix::pam250();
    const Alphabet &aa = m.alphabet();
    auto s = [&](char x, char y) {
        return m.pair(aa.encode(x), aa.encode(y));
    };
    EXPECT_EQ(s('W', 'W'), 17);
    EXPECT_EQ(s('C', 'C'), 12);
    EXPECT_EQ(s('F', 'Y'), 7);
    EXPECT_EQ(s('W', 'C'), -8);
    EXPECT_TRUE(m.isSymmetric());
}

TEST(ScoreMatrix, UnitEditMatrix)
{
    ScoreMatrix m = ScoreMatrix::unitEdit(Alphabet::dna());
    const Alphabet &dna = m.alphabet();
    EXPECT_EQ(m.pair(dna.encode('A'), dna.encode('A')), 0);
    EXPECT_EQ(m.pair(dna.encode('A'), dna.encode('T')), 1);
    EXPECT_EQ(m.gap(dna.encode('A')), 1);
}

TEST(ScoreMatrix, ToStringMentionsLettersAndInf)
{
    std::string s = ScoreMatrix::dnaShortestPathInfMismatch().toString();
    EXPECT_NE(s.find('A'), std::string::npos);
    EXPECT_NE(s.find("inf"), std::string::npos);
}

TEST(ScoreMatrixDeath, DynamicRangeRequiresRaceReadyWeights)
{
    ScoreMatrix m = ScoreMatrix::unitEdit(Alphabet::dna());
    // match weight 0 < 1: not race-ready
    EXPECT_DEATH((void)m.dynamicRange(), "weights >= 1");
}

// ----------------------------------------------- Section 5 conversion

TEST(Convert, Blosum62ProducesPositiveWeights)
{
    auto form = bio::toShortestPathForm(ScoreMatrix::blosum62());
    EXPECT_EQ(form.costs.kind(), ScoreKind::Cost);
    EXPECT_GE(form.costs.minFinite(), 1);
    EXPECT_FALSE(form.costs.hasForbiddenPairs());
    // W-W is the best pairing, so it must carry the smallest
    // diagonal weight ("the scores along the diagonal being the
    // smallest").
    const Alphabet &aa = form.costs.alphabet();
    Score ww = form.costs.pair(aa.encode('W'), aa.encode('W'));
    for (Symbol a = 0; a < 20; ++a)
        for (Symbol b = 0; b < 20; ++b)
            EXPECT_GE(form.costs.pair(a, b), ww);
}

TEST(Convert, BiasIsMinimal)
{
    // For BLOSUM62 (max pair +11, gap -4): pair constraint needs
    // b >= ceil((1 + 11) / 2) = 6; gap needs b >= 1 + (-4) = -3.
    auto form = bio::toShortestPathForm(ScoreMatrix::blosum62());
    EXPECT_EQ(form.bias, 6);
    // Indel weight = b - g = 6 + 4 = 10; worst pair = 2b + 4 = 16.
    const Alphabet &aa = form.costs.alphabet();
    EXPECT_EQ(form.costs.gap(aa.encode('A')), 10);
    EXPECT_EQ(form.costs.dynamicRange(), 16);
    EXPECT_EQ(form.costs.pair(aa.encode('W'), aa.encode('W')),
              2 * 6 - 11);
}

/**
 * The affine-path property that makes the conversion sound: for any
 * full alignment path, converted cost = bias*(N+M) - lambda*score,
 * so the optimum is preserved and recoverable.  Verified through the
 * DP on random protein strings.
 */
TEST(Convert, AffineOnOptimalScores)
{
    util::Rng rng(7);
    ScoreMatrix blosum = ScoreMatrix::blosum62();
    auto form = bio::toShortestPathForm(blosum);
    for (int trial = 0; trial < 20; ++trial) {
        size_t n = 1 + rng.index(16);
        size_t m = 1 + rng.index(16);
        Sequence a = Sequence::random(rng, Alphabet::protein(), n);
        Sequence b = Sequence::random(rng, Alphabet::protein(), m);
        Score best_sim = bio::globalScore(a, b, blosum);
        Score best_cost = bio::globalScore(a, b, form.costs);
        EXPECT_EQ(best_cost, form.convertScore(best_sim, n, m));
        EXPECT_EQ(form.recoverScore(best_cost, n, m), best_sim);
    }
}

TEST(Convert, LambdaScalingStretchesDynamicRange)
{
    auto f1 = bio::toShortestPathForm(ScoreMatrix::blosum62(), 1);
    auto f2 = bio::toShortestPathForm(ScoreMatrix::blosum62(), 2);
    EXPECT_GT(f2.costs.dynamicRange(), f1.costs.dynamicRange());
    EXPECT_EQ(f2.lambda, 2);
    // Score recovery still exact under scaling.
    util::Rng rng(8);
    Sequence a = Sequence::random(rng, Alphabet::protein(), 10);
    Sequence b = Sequence::random(rng, Alphabet::protein(), 12);
    Score sim = bio::globalScore(a, b, ScoreMatrix::blosum62());
    Score cost = bio::globalScore(a, b, f2.costs);
    EXPECT_EQ(f2.recoverScore(cost, 10, 12), sim);
}

TEST(Convert, Fig2aConversion)
{
    // The longest-path DNA matrix converts to a valid cost matrix
    // too (bias handles max score +1, zero gaps).
    auto form = bio::toShortestPathForm(ScoreMatrix::dnaLongestPath());
    EXPECT_GE(form.costs.minFinite(), 1);
    EXPECT_EQ(form.bias, 1);
    const Alphabet &dna = form.costs.alphabet();
    EXPECT_EQ(form.costs.pair(dna.encode('A'), dna.encode('A')), 1);
    EXPECT_EQ(form.costs.pair(dna.encode('A'), dna.encode('C')), 2);
    EXPECT_EQ(form.costs.gap(dna.encode('A')), 1);
}

TEST(ConvertDeath, RejectsCostMatrices)
{
    EXPECT_DEATH(bio::toShortestPathForm(ScoreMatrix::dnaShortestPath()),
                 "similarity");
}

// ------------------------------------------------------ Eq. 8 log-odds

TEST(LogOdds, RecoversKnownScores)
{
    // Construct joint probabilities whose log-odds are exactly
    // +2/-1 at lambda = 1, then check fromLogOdds reproduces them.
    const Alphabet &bin = Alphabet::binary();
    std::vector<double> freqs{0.5, 0.5};
    util::Grid<double> joint(2, 2, 0.0);
    joint.at(0, 0) = 0.25 * std::exp(2.0);
    joint.at(1, 1) = 0.25 * std::exp(2.0);
    joint.at(0, 1) = 0.25 * std::exp(-1.0);
    joint.at(1, 0) = 0.25 * std::exp(-1.0);
    ScoreMatrix m = bio::fromLogOdds(bin, joint, freqs, 1.0, -3);
    EXPECT_EQ(m.pair(0, 0), 2);
    EXPECT_EQ(m.pair(1, 1), 2);
    EXPECT_EQ(m.pair(0, 1), -1);
    EXPECT_EQ(m.gap(0), -3);
}

TEST(LogOdds, LambdaRescalesScores)
{
    const Alphabet &bin = Alphabet::binary();
    std::vector<double> freqs{0.5, 0.5};
    util::Grid<double> joint(2, 2, 0.0);
    joint.at(0, 0) = 0.25 * std::exp(4.0);
    joint.at(1, 1) = 0.25 * std::exp(4.0);
    joint.at(0, 1) = 0.25 * std::exp(-2.0);
    joint.at(1, 0) = 0.25 * std::exp(-2.0);
    ScoreMatrix m = bio::fromLogOdds(bin, joint, freqs, 2.0, -1);
    EXPECT_EQ(m.pair(0, 0), 2);
    EXPECT_EQ(m.pair(0, 1), -1);
}

TEST(LogOdds, PipelineIntoRaceForm)
{
    // Eq. 8 matrix -> Section 5 conversion -> race-ready weights.
    const Alphabet &bin = Alphabet::binary();
    std::vector<double> freqs{0.5, 0.5};
    util::Grid<double> joint(2, 2, 0.0);
    joint.at(0, 0) = 0.25 * std::exp(3.0);
    joint.at(1, 1) = 0.25 * std::exp(3.0);
    joint.at(0, 1) = 0.25 * std::exp(-2.0);
    joint.at(1, 0) = 0.25 * std::exp(-2.0);
    ScoreMatrix sim = bio::fromLogOdds(bin, joint, freqs, 1.0, -4);
    auto form = bio::toShortestPathForm(sim);
    EXPECT_GE(form.costs.minFinite(), 1);
    EXPECT_EQ(form.costs.kind(), ScoreKind::Cost);
}

} // namespace
