/**
 * @file
 * Unit tests for the deadline-aware socket helpers and the
 * deterministic fault injector underneath them: timeouts fire instead
 * of blocking forever, short-I/O reassembly never corrupts a byte,
 * severed fds surface as EOF/error, and the same seed replays the
 * same fault schedule exactly.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "rl/serve/fault.h"
#include "rl/serve/socket.h"

namespace {

using namespace racelogic::serve;

/** A connected socketpair wrapped for RAII. */
struct Pair {
    ScopedFd a, b;

    Pair()
    {
        int fds[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
            a.reset(fds[0]);
            b.reset(fds[1]);
        }
    }
};

std::vector<uint8_t>
patternBytes(size_t n)
{
    std::vector<uint8_t> bytes(n);
    std::iota(bytes.begin(), bytes.end(), uint8_t{0});
    return bytes;
}

// ----------------------------------------------------------- deadlines

TEST(ServeSocket, ReadTimesOutInsteadOfBlockingForever)
{
    Pair pair;
    ASSERT_TRUE(pair.a.valid());

    uint8_t buffer[8];
    const auto before = IoClock::now();
    const IoStatus status = readExact(pair.a.get(), buffer,
                                      sizeof(buffer),
                                      deadlineAfterMs(50));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            IoClock::now() - before)
            .count();
    EXPECT_EQ(status, IoStatus::Timeout);
    EXPECT_GE(elapsed, 50);
    EXPECT_LT(elapsed, 5000);
}

TEST(ServeSocket, PartialFrameStillTimesOut)
{
    // The dangerous case: *some* bytes arrive, then the peer stalls.
    Pair pair;
    ASSERT_TRUE(pair.a.valid());
    const uint8_t teaser[3] = {1, 2, 3};
    ASSERT_TRUE(writeAll(pair.b.get(), teaser, sizeof(teaser)));

    uint8_t buffer[64];
    EXPECT_EQ(readExact(pair.a.get(), buffer, sizeof(buffer),
                        deadlineAfterMs(50)),
              IoStatus::Timeout);
}

TEST(ServeSocket, WriteTimesOutWhenThePeerStopsReading)
{
    Pair pair;
    ASSERT_TRUE(pair.a.valid());
    // Shrink both directions so a few hundred KB guarantees a stall.
    int small = 4096;
    ::setsockopt(pair.a.get(), SOL_SOCKET, SO_SNDBUF, &small,
                 sizeof(small));
    ::setsockopt(pair.b.get(), SOL_SOCKET, SO_RCVBUF, &small,
                 sizeof(small));

    const std::vector<uint8_t> bytes(1u << 20, 0x5A);
    EXPECT_EQ(writeAll(pair.a.get(), bytes.data(), bytes.size(),
                       deadlineAfterMs(100)),
              IoStatus::Timeout);
}

TEST(ServeSocket, ClosedPeerIsEofNotTimeout)
{
    Pair pair;
    ASSERT_TRUE(pair.a.valid());
    pair.b.reset();
    uint8_t buffer[4];
    EXPECT_EQ(readExact(pair.a.get(), buffer, sizeof(buffer),
                        deadlineAfterMs(1000)),
              IoStatus::Eof);
}

TEST(ServeSocket, NegativeTimeoutMeansNoDeadline)
{
    EXPECT_EQ(deadlineAfterMs(-1), kNoDeadline);
    EXPECT_NE(deadlineAfterMs(0), kNoDeadline);
}

TEST(ServeSocket, ConnectToNothingFailsInsteadOfBlocking)
{
    // A refused port fails fast; a missing socket file fails fast.
    // Either way the deadline-aware connect must come back invalid,
    // never block the caller (this is the silent-infinite-block fix).
    uint16_t port = 1; // almost surely nothing listens on port 1
    ScopedFd fd = connectTcp(port, 250);
    EXPECT_FALSE(fd.valid());

    ScopedFd none = connectUnix("/nonexistent/rl-serve.sock", 250);
    EXPECT_FALSE(none.valid());
}

// ------------------------------------------------------ fault injection

/** Install-for-scope guard so a failing test never leaks an injector. */
struct ScopedInjector {
    explicit ScopedInjector(FaultInjector &injector)
    {
        FaultInjector::install(&injector);
    }
    ~ScopedInjector() { FaultInjector::install(nullptr); }
};

TEST(ServeFault, ShortIoReassemblyNeverCorruptsBytes)
{
    FaultConfig config;
    config.seed = 42;
    config.shortIoProbability = 1.0; // every syscall capped to 1..8
    FaultInjector injector(config);
    ScopedInjector scope(injector);

    Pair pair;
    ASSERT_TRUE(pair.a.valid());
    const std::vector<uint8_t> sent = patternBytes(4096);

    std::thread writer([&] {
        (void)writeAll(pair.a.get(), sent.data(), sent.size(),
                       deadlineAfterMs(10000));
    });
    std::vector<uint8_t> received(sent.size());
    EXPECT_EQ(readExact(pair.b.get(), received.data(), received.size(),
                        deadlineAfterMs(10000)),
              IoStatus::Ok);
    writer.join();

    EXPECT_EQ(received, sent);
    EXPECT_GT(injector.stats().shortIos, 0u)
        << "a probability-1 schedule must actually inject";
}

TEST(ServeFault, DropSeversTheConnectionAtTheDrawnOffset)
{
    FaultConfig config;
    config.seed = 7;
    config.dropProbability = 1.0;
    config.dropMinBytes = 64;
    config.dropMaxBytes = 64; // sever exactly after 64 bytes
    FaultInjector injector(config);
    ScopedInjector scope(injector);

    Pair pair;
    ASSERT_TRUE(pair.a.valid());
    const std::vector<uint8_t> bytes(256, 0xA5);
    const IoStatus wrote = writeAll(pair.a.get(), bytes.data(),
                                    bytes.size(), deadlineAfterMs(5000));
    EXPECT_NE(wrote, IoStatus::Ok)
        << "the injector must sever before all 256 bytes pass";
    EXPECT_EQ(injector.stats().drops, 1u);

    // The reader sees a clean truncation, not garbage: at most the
    // 64 pre-sever bytes, all intact, then EOF.
    FaultInjector::install(nullptr);
    std::vector<uint8_t> received(256);
    EXPECT_EQ(readExact(pair.b.get(), received.data(), received.size(),
                        deadlineAfterMs(5000)),
              IoStatus::Eof);
}

TEST(ServeFault, SameSeedReplaysTheSameSchedule)
{
    FaultConfig config;
    config.seed = 1234;
    config.shortIoProbability = 0.5;
    config.dropProbability = 0.25;
    config.dropMinBytes = 128;
    config.dropMaxBytes = 1024;

    // Run the identical transfer pattern twice under fresh injectors:
    // every counter must land on exactly the same value.  The I/O is
    // single-threaded (write fully into the socket buffer, then read
    // it back) so the injector's draw sequence is a pure function of
    // the seed, not of scheduler interleaving.
    auto run = [&config]() {
        FaultInjector injector(config);
        ScopedInjector scope(injector);
        for (int round = 0; round < 8; ++round) {
            Pair pair;
            EXPECT_TRUE(pair.a.valid());
            const std::vector<uint8_t> sent = patternBytes(512);
            const IoStatus wrote =
                writeAll(pair.a.get(), sent.data(), sent.size(),
                         deadlineAfterMs(5000));
            std::vector<uint8_t> received(sent.size());
            if (wrote == IoStatus::Ok)
                (void)readExact(pair.b.get(), received.data(),
                                received.size(), deadlineAfterMs(5000));
        }
        return injector.stats();
    };

    const FaultInjector::Stats first = run();
    const FaultInjector::Stats second = run();
    EXPECT_EQ(first.shortIos, second.shortIos);
    EXPECT_EQ(first.drops, second.drops);
    EXPECT_EQ(first.delays, second.delays);
}

TEST(ServeFault, RecycledFdStartsAFreshByteCount)
{
    FaultConfig config;
    config.seed = 9;
    config.dropProbability = 1.0;
    config.dropMinBytes = 32;
    config.dropMaxBytes = 32;
    FaultInjector injector(config);
    ScopedInjector scope(injector);

    // First connection burns its 32 bytes and is severed...
    Pair first;
    ASSERT_TRUE(first.a.valid());
    const std::vector<uint8_t> bytes(64, 1);
    (void)writeAll(first.a.get(), bytes.data(), bytes.size(),
                   deadlineAfterMs(5000));
    EXPECT_EQ(injector.stats().drops, 1u);
    const int recycledNumber = first.a.get();
    first.a.reset(); // ScopedFd::reset must call forgetFd
    first.b.reset();

    // ...and a new fd (very likely the same number) gets its own
    // fresh offset instead of inheriting an exhausted count.
    Pair second;
    ASSERT_TRUE(second.a.valid());
    (void)recycledNumber; // the kernel usually hands it back here
    const std::vector<uint8_t> small(16, 2);
    EXPECT_EQ(writeAll(second.a.get(), small.data(), small.size(),
                       deadlineAfterMs(5000)),
              IoStatus::Ok)
        << "16 bytes on a fresh fd sit below the 32-byte drop offset";
}

} // namespace
