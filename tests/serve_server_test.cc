/**
 * @file
 * End-to-end tests for the serve daemon: a real AlignServer on a real
 * socket, a real client, and three load-bearing claims --
 *
 *  1. a served solve is bit-identical to a direct api::RaceEngine
 *     solve of the same problem;
 *  2. admission control bounds outstanding work and rejects the
 *     excess with typed QueueFull statuses, visibly in the counters;
 *  3. warm same-shape traffic advances shard-local hit counters only
 *     -- the shared build lock is untouched after the first miss.
 *
 * Plus the protocol abuse the daemon must shrug off: oversized
 * length prefixes, unknown tags, and mid-frame disconnects.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "rl/api/api.h"
#include "rl/pangraph/gfa.h"
#include "rl/serve/client.h"
#include "rl/serve/server.h"

namespace {

using namespace racelogic;
using namespace racelogic::serve;
using Status = racelogic::serve::Status; // not rl::Status (library errors)

bio::ScoreMatrix
fig2b()
{
    return bio::ScoreMatrix::dnaShortestPath();
}

/** A tiny two-bubble pangenome, parsed like a real GFA file. */
std::shared_ptr<const pangraph::VariationGraph>
bubbleGraph()
{
    const std::string gfa = "H\tVN:Z:1.0\n"
                            "S\ts1\tACG\n"
                            "S\ts2\tT\n"
                            "S\ts3\tC\n"
                            "S\ts4\tGGA\n"
                            "L\ts1\t+\ts2\t+\t0M\n"
                            "L\ts1\t+\ts3\t+\t0M\n"
                            "L\ts2\t+\ts4\t+\t0M\n"
                            "L\ts3\t+\ts4\t+\t0M\n";
    std::istringstream in(gfa);
    return std::make_shared<pangraph::VariationGraph>(
        pangraph::readGfa(in, bio::Alphabet("ACGT")));
}

ServerConfig
tcpConfig()
{
    ServerConfig cfg;
    cfg.tcpPort = 0; // ephemeral
    cfg.workers = 2;
    cfg.queueDepth = 16;
    cfg.graph = bubbleGraph();
    cfg.graphMatrix = fig2b();
    return cfg;
}

/** Deterministic pseudo-DNA so tests need no RNG plumbing. */
std::string
dnaString(size_t length, uint32_t seed)
{
    static const char letters[] = "ACGT";
    std::string s;
    s.reserve(length);
    uint32_t state = seed * 2654435761u + 1;
    for (size_t i = 0; i < length; ++i) {
        state = state * 1664525u + 1013904223u;
        s.push_back(letters[(state >> 24) & 3]);
    }
    return s;
}

// ----------------------------------------------------------- fidelity

TEST(ServeServer, ServedSolveIsBitIdenticalToDirectEngine)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());
    ASSERT_TRUE(client.ok());

    const std::string a = dnaString(40, 1), b = dnaString(40, 2);
    ASSERT_TRUE(client.submitPairwise(31, fig2b(), a, b));
    Response response;
    ASSERT_TRUE(client.receive(response));
    ASSERT_EQ(response.status, Status::Ok);
    ASSERT_TRUE(response.solve.has_value());

    api::EngineConfig direct;
    direct.workerThreads = 1;
    api::RaceEngine engine(direct);
    const api::RaceResult expected =
        engine.solve(api::RaceProblem::pairwiseAlignment(
            fig2b(), bio::Sequence(bio::Alphabet("ACGT"), a),
            bio::Sequence(bio::Alphabet("ACGT"), b)));

    EXPECT_EQ(response.solve->score, expected.score);
    EXPECT_EQ(response.solve->racedCost, expected.racedCost);
    EXPECT_EQ(response.solve->latencyCycles,
              static_cast<uint64_t>(expected.latencyCycles));
    EXPECT_EQ(response.solve->cyclesUsed,
              static_cast<uint64_t>(expected.cyclesUsed));
    EXPECT_EQ(response.solve->events, expected.events);
    EXPECT_EQ(response.solve->nodes, expected.nodes);
    EXPECT_EQ(response.solve->cellsFired, expected.cellsFired);
    EXPECT_EQ(response.solve->completed, expected.completed);
    EXPECT_EQ(response.solve->accepted, expected.accepted);

    server.stop();
}

TEST(ServeServer, GraphAlignMatchesDirectEngineOverUnixSocket)
{
    const std::string path =
        testing::TempDir() + "rl-serve-" + std::to_string(getpid()) +
        ".sock";
    ServerConfig cfg = tcpConfig();
    cfg.tcpPort = -1;
    cfg.unixPath = path;
    auto graph = cfg.graph;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overUnix(path);
    ASSERT_TRUE(client.ok());

    ASSERT_TRUE(client.submitGraphAlign(5, "ACGTGA", bio::kScoreInfinity));
    Response response;
    ASSERT_TRUE(client.receive(response));
    ASSERT_EQ(response.status, Status::Ok);

    api::EngineConfig direct;
    direct.workerThreads = 1;
    api::RaceEngine engine(direct);
    const api::RaceResult expected =
        engine.solve(api::RaceProblem::graphAlign(
            fig2b(),
            bio::Sequence(bio::Alphabet("ACGT"), std::string("ACGTGA")),
            graph));
    EXPECT_EQ(response.solve->score, expected.score);
    EXPECT_EQ(response.solve->racedCost, expected.racedCost);
    EXPECT_EQ(response.solve->latencyCycles,
              static_cast<uint64_t>(expected.latencyCycles));

    server.stop();
    EXPECT_NE(::access(path.c_str(), F_OK), 0)
        << "stop() must unlink the socket file";
}

TEST(ServeServer, MapReadsScreensABatch)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    // One read on the graph's spine, one distant.  Fig. 2b charges
    // matches cost 1, so a perfect 7-char mapping costs 7; threshold
    // 10 admits the near read and aborts the far one.
    const std::string fasta = ">ok\nACGTGA\n>far\nTTTTTTTTTTTT\n";
    ASSERT_TRUE(client.submitMapReads(9, fasta, 10));
    Response response;
    ASSERT_TRUE(client.receive(response));
    ASSERT_EQ(response.status, Status::Ok);
    ASSERT_EQ(response.reads.size(), 2u);
    EXPECT_TRUE(response.reads[0].accepted);
    EXPECT_FALSE(response.reads[1].accepted);

    server.stop();
}

// ---------------------------------------------------- admission control

TEST(ServeServer, SaturationRejectsWithTypedQueueFull)
{
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    cfg.queueDepth = 2;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    // Pipeline far more work than depth 2 admits before reading any
    // response; each solve is a 201x201 grid, so the single worker
    // cannot drain between the back-to-back frames.
    const size_t total = 24;
    const std::string a = dnaString(200, 3), b = dnaString(200, 4);
    for (size_t i = 0; i < total; ++i)
        ASSERT_TRUE(client.submitPairwise(
            static_cast<uint32_t>(100 + i), fig2b(), a, b));

    size_t ok = 0, queueFull = 0, other = 0;
    for (size_t i = 0; i < total; ++i) {
        Response response;
        ASSERT_TRUE(client.receive(response));
        if (response.status == Status::Ok)
            ++ok;
        else if (response.status == Status::QueueFull)
            ++queueFull;
        else
            ++other;
    }
    EXPECT_EQ(ok + queueFull, total);
    EXPECT_EQ(other, 0u);
    EXPECT_GE(ok, 2u) << "admitted work must still complete";
    EXPECT_GE(queueFull, 1u) << "saturation must be visible";

    // stop() drains, so completed has caught up with the replies.
    server.stop();
    const QueueStats stats = server.queueStats();
    EXPECT_EQ(stats.enqueued, ok);
    EXPECT_EQ(stats.completed, ok);
    EXPECT_EQ(stats.rejectedQueueFull, queueFull);
    EXPECT_LE(stats.highWater, 2u);
}

TEST(ServeServer, StatsAnswerInlineWhileQueueIsBusy)
{
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    cfg.queueDepth = 4;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient loader = ServeClient::overTcp(server.port());
    ServeClient prober = ServeClient::overTcp(server.port());

    const std::string a = dnaString(200, 5), b = dnaString(200, 6);
    for (uint32_t i = 0; i < 4; ++i)
        ASSERT_TRUE(loader.submitPairwise(i, fig2b(), a, b));

    // The probe rides a different connection and must not wait for
    // the queue: Stats bypasses admission entirely.
    ASSERT_TRUE(prober.submitStats(77));
    Response stats;
    ASSERT_TRUE(prober.receive(stats));
    EXPECT_EQ(stats.status, Status::Ok);
    ASSERT_TRUE(stats.queueStats.has_value());
    ASSERT_EQ(stats.shardStats.size(), 1u);

    for (int i = 0; i < 4; ++i) {
        Response r;
        ASSERT_TRUE(loader.receive(r));
    }
    server.stop();
}

// --------------------------------------------------------- telemetry

/** Sum of the eight stage durations of one finalized trace. */
uint64_t
stageSum(const telemetry::RequestTrace &t)
{
    return t.readUs() + t.decodeUs() + t.admitUs() + t.queueWaitUs() +
           t.dispatchUs() + t.solveUs() + t.encodeUs() + t.writeUs();
}

TEST(ServeServer, TraceHookSeesCoherentStages)
{
    std::mutex mutex;
    std::vector<telemetry::RequestTrace> traces;
    ServerConfig cfg = tcpConfig();
    cfg.traceHook = [&](const telemetry::RequestTrace &t) {
        std::lock_guard<std::mutex> lock(mutex);
        traces.push_back(t);
    };
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());
    ASSERT_TRUE(client.ok());

    const std::string a = dnaString(60, 7), b = dnaString(60, 8);
    ASSERT_TRUE(client.submitPairwise(41, fig2b(), a, b));
    Response response;
    ASSERT_TRUE(client.receive(response));
    ASSERT_EQ(response.status, Status::Ok);
    ASSERT_TRUE(client.submitPing(42));
    ASSERT_TRUE(client.receive(response));
    server.stop();

    std::lock_guard<std::mutex> lock(mutex);
    const telemetry::RequestTrace *solve = nullptr, *ping = nullptr;
    for (const telemetry::RequestTrace &t : traces) {
        if (t.id == 41)
            solve = &t;
        if (t.id == 42)
            ping = &t;
    }
    ASSERT_NE(solve, nullptr) << "raced request must be traced";
    ASSERT_NE(ping, nullptr) << "inline answers must be traced too";

    EXPECT_EQ(solve->tag, static_cast<uint8_t>(RequestTag::Pairwise));
    EXPECT_EQ(solve->status, static_cast<uint8_t>(Status::Ok));
    EXPECT_GT(solve->solveUs(), 0u) << "a 61x61 race takes time";
    EXPECT_GT(solve->totalUs(), 0u);

    // Stage durations are differences of consecutive stamps: each is
    // nonnegative by construction, and their sum reproduces the
    // end-to-end latency up to one microsecond of truncation per
    // stage boundary.
    for (const telemetry::RequestTrace &t : traces) {
        const uint64_t sum = stageSum(t);
        EXPECT_LE(sum, t.totalUs()) << "id " << t.id;
        EXPECT_LE(t.totalUs() - sum, 8u) << "id " << t.id;
    }

    // The inline ping never raced, so its queue/solve stages are
    // zero-length by finalize()'s carry-forward.
    EXPECT_EQ(ping->queueWaitUs(), 0u);
    EXPECT_EQ(ping->solveUs(), 0u);
}

TEST(ServeServer, MetricsOverWireStaysCoherentWithStats)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());
    ASSERT_TRUE(client.ok());

    const std::string a = dnaString(40, 9), b = dnaString(40, 10);
    for (uint32_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(client.submitPairwise(50 + i, fig2b(), a, b));
        Response r;
        ASSERT_TRUE(client.receive(r));
        ASSERT_EQ(r.status, Status::Ok);
    }

    // The end-to-end sample lands after the reply is flushed, so
    // scrape until the histogram count has caught up with the three
    // solves the client already saw complete.
    Response metricsResponse;
    const telemetry::HistogramSnapshot *e2e = nullptr;
    for (int attempt = 0; attempt < 200; ++attempt) {
        ASSERT_TRUE(client.submitMetrics(90));
        ASSERT_TRUE(client.receive(metricsResponse));
        ASSERT_EQ(metricsResponse.status, Status::Ok);
        ASSERT_TRUE(metricsResponse.metrics.has_value());
        e2e = metricsResponse.metrics->histogram("rl_serve_request_us");
        ASSERT_NE(e2e, nullptr);
        if (e2e->count >= 3)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const telemetry::Snapshot &snap = *metricsResponse.metrics;
    EXPECT_EQ(e2e->count, 3u);
    EXPECT_GT(e2e->sum, 0u);

    // Request accounting: three solves plus at least one Metrics
    // scrape have arrived by the time the snapshot was taken.
    const telemetry::CounterSnapshot *requests =
        snap.counter("rl_serve_requests_total");
    ASSERT_NE(requests, nullptr);
    EXPECT_GE(requests->value, 4u);

    // Kernel profiling flowed through the wire: the races drained
    // events through real Dial buckets.
    const telemetry::CounterSnapshot *events =
        snap.counter("rl_kernel_events_total");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->value, 0u);

    // Plan-cache coherence (the satellite claim): the synthetic
    // shard series aggregate to the same ledger Stats reports --
    // every solve was either a plan build or a cache hit.
    ASSERT_TRUE(client.submitStats(91));
    Response statsResponse;
    ASSERT_TRUE(client.receive(statsResponse));
    ASSERT_TRUE(statsResponse.queueStats.has_value());

    uint64_t solves = 0, built = 0, hits = 0;
    for (const ShardStatsWire &s : statsResponse.shardStats) {
        solves += s.solves;
        built += s.plansBuilt;
        hits += s.planCacheHits;
    }
    EXPECT_EQ(solves, 3u);
    // The serve path prepares a plan under the build lock before it
    // solves, so every solve rides a cached plan (hits == solves) and
    // the one shape cost exactly one synthesis.
    EXPECT_EQ(hits, solves);
    EXPECT_EQ(built, 1u);

    const telemetry::CounterSnapshot *solvesSeries =
        snap.counter("rl_solves_total");
    const telemetry::CounterSnapshot *builtSeries =
        snap.counter("rl_plans_built_total");
    const telemetry::CounterSnapshot *hitsSeries =
        snap.counter("rl_plan_cache_hits_total");
    ASSERT_NE(solvesSeries, nullptr);
    ASSERT_NE(builtSeries, nullptr);
    ASSERT_NE(hitsSeries, nullptr);
    EXPECT_EQ(solvesSeries->value, solves);
    EXPECT_EQ(builtSeries->value, built);
    EXPECT_EQ(hitsSeries->value, hits);
    for (size_t i = 0; i < statsResponse.shardStats.size(); ++i) {
        const std::string prefix = "rl_shard" + std::to_string(i) + "_";
        const telemetry::CounterSnapshot *shardSolves =
            snap.counter(prefix + "solves_total");
        ASSERT_NE(shardSolves, nullptr) << prefix;
        EXPECT_EQ(shardSolves->value,
                  statsResponse.shardStats[i].solves)
            << prefix;
    }

    // Queue ledger, one source of truth: the synthetic series carry
    // the same numbers the Stats response does.
    const telemetry::CounterSnapshot *enqueued =
        snap.counter("rl_queue_enqueued_total");
    ASSERT_NE(enqueued, nullptr);
    EXPECT_EQ(enqueued->value, statsResponse.queueStats->enqueued);

    server.stop();
}

TEST(ServeServer, MetricsStillAnswersWithTelemetryOff)
{
    ServerConfig cfg = tcpConfig();
    cfg.telemetry = false;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    const std::string a = dnaString(30, 11), b = dnaString(30, 12);
    ASSERT_TRUE(client.submitPairwise(60, fig2b(), a, b));
    Response r;
    ASSERT_TRUE(client.receive(r));
    ASSERT_EQ(r.status, Status::Ok);

    // No registered series -- but the synthetic queue/shard series
    // still answer, so scrapes degrade instead of 404ing.
    ASSERT_TRUE(client.submitMetrics(61));
    ASSERT_TRUE(client.receive(r));
    ASSERT_EQ(r.status, Status::Ok);
    ASSERT_TRUE(r.metrics.has_value());
    EXPECT_EQ(r.metrics->histogram("rl_serve_request_us"), nullptr);
    EXPECT_NE(r.metrics->counter("rl_solves_total"), nullptr);

    server.stop();
}

TEST(ServeServer, QueueWaitInflatesUnderSaturation)
{
    std::mutex mutex;
    std::vector<telemetry::RequestTrace> traces;
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    cfg.queueDepth = 2;
    cfg.traceHook = [&](const telemetry::RequestTrace &t) {
        std::lock_guard<std::mutex> lock(mutex);
        traces.push_back(t);
    };
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    // Same harness as SaturationRejectsWithTypedQueueFull: one slow
    // worker, tiny depth, a pipelined flood.
    const size_t total = 24;
    const std::string a = dnaString(200, 3), b = dnaString(200, 4);
    for (size_t i = 0; i < total; ++i)
        ASSERT_TRUE(client.submitPairwise(
            static_cast<uint32_t>(300 + i), fig2b(), a, b));
    size_t ok = 0;
    for (size_t i = 0; i < total; ++i) {
        Response response;
        ASSERT_TRUE(client.receive(response));
        if (response.status == Status::Ok)
            ++ok;
    }
    ASSERT_GE(ok, 2u);
    server.stop();

    // With depth 2 and one worker, at least one admitted request sat
    // behind another's full race.  The bound is self-calibrating:
    // queue-wait is measured against the fastest solve this same run
    // actually performed, not a wall-clock guess.
    std::lock_guard<std::mutex> lock(mutex);
    uint64_t maxWait = 0;
    uint64_t minSolve = UINT64_MAX;
    size_t raced = 0;
    for (const telemetry::RequestTrace &t : traces) {
        if (t.status != static_cast<uint8_t>(Status::Ok) ||
            t.tag != static_cast<uint8_t>(RequestTag::Pairwise))
            continue;
        ++raced;
        maxWait = std::max(maxWait, t.queueWaitUs());
        minSolve = std::min(minSolve, t.solveUs());
        EXPECT_LE(stageSum(t), t.totalUs());
    }
    EXPECT_EQ(raced, ok);
    EXPECT_GE(maxWait, minSolve / 4)
        << "saturation must surface as queue-wait";
}

// ------------------------------------------------- sharded plan caches

TEST(ServeServer, WarmShapeTrafficNeverTakesTheBuildLock)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    // Same shape every time (one matrix, one length pair): after the
    // first request plans it, every later one is a shard-local hit.
    const size_t total = 12;
    for (size_t i = 0; i < total; ++i) {
        ASSERT_TRUE(client.submitPairwise(
            static_cast<uint32_t>(i), fig2b(), dnaString(32, 10 + i),
            dnaString(32, 50 + i)));
        Response response; // serialize: no same-shape races on warmup
        ASSERT_TRUE(client.receive(response));
        ASSERT_EQ(response.status, Status::Ok);
    }

    uint64_t hits = 0, locks = 0, solves = 0;
    size_t activeShards = 0;
    for (const ShardStatsWire &shard : server.shardStats()) {
        hits += shard.shardHits;
        locks += shard.buildLocks;
        solves += shard.solves;
        activeShards += shard.solves > 0;
    }
    EXPECT_EQ(solves, total);
    EXPECT_EQ(locks, 1u) << "only the cold miss may take the build lock";
    EXPECT_EQ(hits, total - 1);
    EXPECT_EQ(activeShards, 1u)
        << "one shape must route to exactly one shard";

    server.stop();
}

// ------------------------------------------------------- protocol abuse

TEST(ServeServer, OversizedLengthPrefixGetsTypedReplyThenClose)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    ASSERT_TRUE(client.sendBytes({0xFF, 0xFF, 0xFF, 0xFF}));
    Response response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::Oversized);
    EXPECT_EQ(response.id, 0u); // id unknowable from a hostile prefix

    // The framing is poisoned, so the daemon hangs up...
    EXPECT_FALSE(client.receive(response));
    EXPECT_EQ(server.queueStats().rejectedOversized, 1u);

    // ...but keeps serving fresh connections.
    ServeClient fresh = ServeClient::overTcp(server.port());
    ASSERT_TRUE(fresh.submitPing(1));
    ASSERT_TRUE(fresh.receive(response));
    EXPECT_EQ(response.status, Status::Ok);

    server.stop();
}

TEST(ServeServer, UnknownTagIsBadRequestAndConversationContinues)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    ASSERT_TRUE(client.submitRaw({9, 0, 0, 0, 250}));
    Response response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::BadRequest);
    EXPECT_EQ(response.id, 9u);
    EXPECT_EQ(response.message, "unknown-kind");

    // Frame boundaries are intact: the same connection still works.
    ASSERT_TRUE(client.submitPing(10));
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_EQ(server.queueStats().rejectedBadRequest, 1u);

    server.stop();
}

TEST(ServeServer, MidFrameDisconnectLeavesTheDaemonServing)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());

    {
        // Promise 100 bytes, send 3, vanish.
        ServeClient rude = ServeClient::overTcp(server.port());
        ASSERT_TRUE(rude.sendBytes({100, 0, 0, 0, 1, 2, 3}));
        rude.close();
    }

    ServeClient polite = ServeClient::overTcp(server.port());
    ASSERT_TRUE(polite.submitPing(4));
    Response response;
    ASSERT_TRUE(polite.receive(response));
    EXPECT_EQ(response.status, Status::Ok);

    server.stop();
}

TEST(ServeServer, InvalidProblemIsBadRequestNotACrash)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    // A zero-weight matrix would trip the engine's race-ready assert;
    // the wire layer must bounce it long before the engine sees it.
    ASSERT_TRUE(client.submitPairwise(
        6, bio::ScoreMatrix::unitEdit(bio::Alphabet("ACGT")), "ACGT",
        "ACGT"));
    Response response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::BadRequest);

    ASSERT_TRUE(client.submitPing(7));
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::Ok);

    server.stop();
}

// ------------------------------------------------- slow peers & deadlines

TEST(ServeServer, MidFrameStallerIsSeveredWhileOthersAreServed)
{
    ServerConfig cfg = tcpConfig();
    cfg.ioTimeoutMs = 100;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());

    // The staller promises 64 bytes, sends 3, and then just... waits.
    ServeClient staller = ServeClient::overTcp(server.port());
    ASSERT_TRUE(staller.sendBytes({64, 0, 0, 0, 1, 2, 3}));

    // While the staller holds its frame open, other connections get
    // full service -- the stall pins no shared thread.
    ServeClient polite = ServeClient::overTcp(server.port());
    Response response;
    for (uint32_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(polite.submitPairwise(i, fig2b(), dnaString(20, i),
                                          dnaString(20, i + 9)));
        ASSERT_TRUE(polite.receive(response));
        EXPECT_EQ(response.status, Status::Ok);
    }

    // After ioTimeoutMs the reader gives up and severs the staller.
    EXPECT_EQ(staller.receive(response, deadlineAfterMs(5000)),
              IoStatus::Eof);

    server.stop();
}

TEST(ServeServer, IdlePeerIsHungUpOnAfterIdleTimeout)
{
    ServerConfig cfg = tcpConfig();
    cfg.idleTimeoutMs = 50;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());

    // Connect, say nothing: the daemon reclaims the connection.
    ServeClient idler = ServeClient::overTcp(server.port());
    ASSERT_TRUE(idler.ok());
    Response response;
    EXPECT_EQ(idler.receive(response, deadlineAfterMs(5000)),
              IoStatus::Eof);

    // An idle hangup is housekeeping, not an error: new connections
    // are welcome.
    ServeClient fresh = ServeClient::overTcp(server.port());
    ASSERT_TRUE(fresh.submitPing(1));
    ASSERT_TRUE(fresh.receive(response));
    EXPECT_EQ(response.status, Status::Ok);

    server.stop();
}

TEST(ServeServer, StoppedReaderIsSeveredByTheWriteDeadline)
{
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    cfg.queueDepth = 256;
    cfg.ioTimeoutMs = 150;
    cfg.sndbufBytes = 2048; // tiny send buffer: small responses stall
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());

    // A peer that submits a pile of work and never reads a byte.  A
    // raw socket with a deliberately tiny receive buffer (set before
    // connect, so the window is negotiated small) makes the daemon's
    // response writes stall after a few kilobytes; the write deadline
    // then trips and the connection is severed -- costing at most one
    // ioTimeoutMs of one worker's time.
    ScopedFd rude(::socket(AF_INET, SOCK_STREAM, 0));
    ASSERT_TRUE(rude.valid());
    int rcvbuf = 1024;
    ::setsockopt(rude.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                 sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(rude.get(),
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    const std::string a = dnaString(24, 31), b = dnaString(24, 32);
    size_t sent = 0;
    for (; sent < 400; ++sent) {
        const auto framed = frame(encodePairwise(
            static_cast<uint32_t>(sent), fig2b(), a, b));
        if (writeAll(rude.get(), framed.data(), framed.size(),
                     deadlineAfterMs(2000)) != IoStatus::Ok)
            break; // severed mid-send: the daemon gave up on us
    }
    ASSERT_GT(sent, 0u);

    // Now genuinely stop reading for a window several times the write
    // deadline.  The replies to those requests overflow the ~3 KB of
    // socket buffering within the first few dozen, the daemon's reply
    // write stalls against our zero receive window, the 150 ms
    // deadline trips, and the connection is severed.  (Draining
    // *immediately* instead would make us a well-behaved reader and
    // rescue the stalled write -- the whole point is that we do not.)
    std::this_thread::sleep_for(std::chrono::milliseconds(2000));

    // The sever is observable as buffered-bytes-then-FIN (or a reset):
    // draining hits EOF/error long before the megabyte we ask for.
    std::vector<uint8_t> sink(1u << 20);
    EXPECT_NE(readExact(rude.get(), sink.data(), sink.size(),
                        deadlineAfterMs(10000)),
              IoStatus::Timeout);
    rude.reset();

    // And everyone else still gets answers afterwards.
    ServeClient polite = ServeClient::overTcp(server.port());
    ASSERT_TRUE(polite.submitPing(9));
    Response response;
    ASSERT_TRUE(polite.receive(response));
    EXPECT_EQ(response.status, Status::Ok);

    server.stop();
}

TEST(ServeServer, QueuedRequestPastDeadlineIsShedNotRaced)
{
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    cfg.queueDepth = 8;
    cfg.drainBatchMax = 1; // one job per drain: the second waits
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    // The blocker holds the single worker well past the doomed
    // request's 1 ms deadline; the doomed job is still queued when the
    // dispatcher next drains, so it is shed without touching a shard.
    ASSERT_TRUE(client.submitPairwise(1, fig2b(), dnaString(500, 41),
                                      dnaString(500, 42)));
    ASSERT_TRUE(client.submitPairwise(2, fig2b(), dnaString(500, 43),
                                      dnaString(500, 44), 1));

    size_t ok = 0, shed = 0;
    for (int i = 0; i < 2; ++i) {
        Response response;
        ASSERT_TRUE(client.receive(response));
        if (response.status == Status::Ok)
            ++ok;
        if (response.status == Status::DeadlineExceeded) {
            ++shed;
            EXPECT_EQ(response.id, 2u);
            EXPECT_EQ(response.message, "deadline expired while queued");
        }
    }
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(shed, 1u);

    server.stop();

    // The shed request never reached the engine: one solve, and the
    // ledger accounts the shed explicitly.
    uint64_t solves = 0;
    for (const ShardStatsWire &s : server.shardStats())
        solves += s.solves;
    EXPECT_EQ(solves, 1u);
    const QueueStats stats = server.queueStats();
    EXPECT_EQ(stats.shedDeadline, 1u);
    EXPECT_EQ(stats.enqueued, stats.completed + stats.queued +
                                  stats.inflight + stats.shedDeadline);
}

TEST(ServeServer, DeadlineTrippingMidRaceCancelsCooperatively)
{
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    // A 2001x2001 grid races for far longer than 10 ms; the queue is
    // otherwise empty, so the job drains (and starts) well before the
    // deadline, then the token trips mid-sweep.
    ASSERT_TRUE(client.submitPairwise(3, fig2b(), dnaString(2000, 51),
                                      dnaString(2000, 52), 10));
    Response response;
    ASSERT_TRUE(client.receive(response));
    EXPECT_EQ(response.status, Status::DeadlineExceeded);
    EXPECT_FALSE(response.solve.has_value());

    server.stop();

    // Not shed: the race started and was cancelled from inside.
    EXPECT_EQ(server.queueStats().shedDeadline, 0u);
    uint64_t solves = 0;
    for (const ShardStatsWire &s : server.shardStats())
        solves += s.solves;
    EXPECT_EQ(solves, 1u);
}

// ---------------------------------------------- health, brownout, reload

/** Same alphabet as bubbleGraph(), different spine: reload-compatible
 *  but alignment scores differ, so version swaps are observable. */
std::shared_ptr<const pangraph::VariationGraph>
forkGraph()
{
    const std::string gfa = "H\tVN:Z:1.0\n"
                            "S\ts1\tAAC\n"
                            "S\ts2\tGG\n"
                            "S\ts3\tTT\n"
                            "S\ts4\tCAA\n"
                            "L\ts1\t+\ts2\t+\t0M\n"
                            "L\ts1\t+\ts3\t+\t0M\n"
                            "L\ts2\t+\ts4\t+\t0M\n"
                            "L\ts3\t+\ts4\t+\t0M\n";
    std::istringstream in(gfa);
    return std::make_shared<pangraph::VariationGraph>(
        pangraph::readGfa(in, bio::Alphabet("ACGT")));
}

api::RaceResult
directGraphSolve(const std::shared_ptr<const pangraph::VariationGraph> &g,
                 const std::string &read)
{
    api::EngineConfig direct;
    direct.workerThreads = 1;
    api::RaceEngine engine(direct);
    return engine.solve(api::RaceProblem::graphAlign(
        fig2b(), bio::Sequence(bio::Alphabet("ACGT"), read), g));
}

TEST(ServeServer, HealthAnswersInlineEvenWhileSaturated)
{
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    cfg.queueDepth = 2;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient loader = ServeClient::overTcp(server.port());
    ServeClient prober = ServeClient::overTcp(server.port());

    // Saturate the single worker with big grids...
    const std::string a = dnaString(200, 13), b = dnaString(200, 14);
    const size_t total = 8;
    for (size_t i = 0; i < total; ++i)
        ASSERT_TRUE(loader.submitPairwise(static_cast<uint32_t>(i),
                                          fig2b(), a, b));

    // ...and Health still answers inline on another connection, with
    // a bounded wait: it never enters the admission queue.
    ASSERT_TRUE(prober.submitHealth(70));
    Response health;
    ASSERT_EQ(prober.receive(health, deadlineAfterMs(2000)),
              IoStatus::Ok);
    ASSERT_EQ(health.status, Status::Ok);
    ASSERT_TRUE(health.health.has_value());
    EXPECT_EQ(health.health->state, HealthState::Ready);
    EXPECT_EQ(health.health->graphVersion, 1u);

    for (size_t i = 0; i < total; ++i) {
        Response r;
        ASSERT_TRUE(loader.receive(r));
    }
    server.stop();
}

TEST(ServeServer, TinyMemoryBudgetEntersAndExitsBrownoutObservably)
{
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    cfg.memBudgetBytes = 1; // any resident plan trips the budget
    cfg.janitorIntervalMs = 10;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    EXPECT_FALSE(server.brownedOut());

    // One solve leaves a resident plan; the next janitor tick crosses
    // the 1-byte high watermark and latches the brownout.
    ASSERT_TRUE(client.submitPairwise(1, fig2b(), dnaString(40, 15),
                                      dnaString(40, 16)));
    Response r;
    ASSERT_TRUE(client.receive(r));
    ASSERT_EQ(r.status, Status::Ok);
    for (int i = 0; i < 500 && !server.brownedOut(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(server.brownedOut());

    // Observable three ways: the Health state, the gauge, and the
    // typed shed of batch-class work at admission.
    ASSERT_TRUE(client.submitHealth(2));
    ASSERT_TRUE(client.receive(r));
    ASSERT_TRUE(r.health.has_value());
    EXPECT_EQ(r.health->state, HealthState::Brownout);

    const telemetry::Snapshot snap = server.metricsSnapshot();
    const telemetry::GaugeSnapshot *gauge =
        snap.gauge("rl_serve_brownout");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->value, 1);
    EXPECT_NE(snap.gauge("rl_mem_plan_cache_bytes"), nullptr);
    EXPECT_NE(snap.gauge("rl_mem_budget_bytes"), nullptr);

    ASSERT_TRUE(client.submitPairwise(3, fig2b(), dnaString(40, 17),
                                      dnaString(40, 18), 0,
                                      Priority::Batch));
    ASSERT_TRUE(client.receive(r));
    EXPECT_EQ(r.status, Status::ResourceExhausted);

    // The janitor's reclaim (scratch shrink + plan eviction) drives
    // usage to zero, which is under the low watermark: the latch must
    // release on its own.
    for (int i = 0; i < 500 && server.brownedOut(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(server.brownedOut());

    // Interactive work was never shed at admission, before or after.
    ASSERT_TRUE(client.submitPairwise(4, fig2b(), dnaString(40, 19),
                                      dnaString(40, 20), 0,
                                      Priority::Interactive));
    ASSERT_TRUE(client.receive(r));
    EXPECT_EQ(r.status, Status::Ok);

    server.stop();
    const QueueStats stats = server.queueStats();
    EXPECT_GE(stats.rejectedResource, 1u);
    EXPECT_GE(stats.classes[0].rejectedResource, 1u);
    EXPECT_EQ(stats.enqueued, stats.completed + stats.shedDeadline +
                                  stats.shedEvicted);
}

TEST(ServeServer, ReloadSwapsGraphsWithVersionBumpAndFidelity)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    const std::string read = "ACGTGA";
    ASSERT_TRUE(client.submitGraphAlign(1, read, bio::kScoreInfinity));
    Response before;
    ASSERT_TRUE(client.receive(before));
    ASSERT_EQ(before.status, Status::Ok);
    const api::RaceResult v1 = directGraphSolve(bubbleGraph(), read);
    EXPECT_EQ(before.solve->score, v1.score);
    EXPECT_EQ(before.solve->racedCost, v1.racedCost);

    const racelogic::Status reload = server.reloadGraph(forkGraph());
    ASSERT_TRUE(reload.ok()) << reload.toString();
    EXPECT_EQ(server.graphVersion(), 2u);

    ASSERT_TRUE(client.submitGraphAlign(2, read, bio::kScoreInfinity));
    Response after;
    ASSERT_TRUE(client.receive(after));
    ASSERT_EQ(after.status, Status::Ok);
    const api::RaceResult v2 = directGraphSolve(forkGraph(), read);
    EXPECT_EQ(after.solve->score, v2.score);
    EXPECT_EQ(after.solve->racedCost, v2.racedCost);
    EXPECT_NE(after.solve->score, before.solve->score)
        << "the fork graph is chosen so the swap is observable";

    ASSERT_TRUE(client.submitHealth(3));
    Response health;
    ASSERT_TRUE(client.receive(health));
    ASSERT_TRUE(health.health.has_value());
    EXPECT_EQ(health.health->graphVersion, 2u);

    server.stop();
}

TEST(ServeServer, FailedReloadKeepsTheOldGraphServing)
{
    AlignServer server(tcpConfig());
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    // A null graph is rejected with a typed status...
    EXPECT_FALSE(server.reloadGraph(nullptr).ok());

    // ...and so is a graph over a different alphabet: connections
    // decode against the serving alphabet, so swapping it mid-flight
    // would corrupt every pipelined request.
    const std::string gfa = "H\tVN:Z:1.0\n"
                            "S\ts1\tAC\n"
                            "S\ts2\tGA\n"
                            "L\ts1\t+\ts2\t+\t0M\n";
    std::istringstream in(gfa);
    auto foreign = std::make_shared<pangraph::VariationGraph>(
        pangraph::readGfa(in, bio::Alphabet("ACG")));
    EXPECT_FALSE(server.reloadGraph(foreign).ok());

    // Both failures left version and behavior untouched.
    EXPECT_EQ(server.graphVersion(), 1u);
    const std::string read = "ACGTGA";
    ASSERT_TRUE(client.submitGraphAlign(9, read, bio::kScoreInfinity));
    Response response;
    ASSERT_TRUE(client.receive(response));
    ASSERT_EQ(response.status, Status::Ok);
    const api::RaceResult expected = directGraphSolve(bubbleGraph(), read);
    EXPECT_EQ(response.solve->score, expected.score);
    EXPECT_EQ(response.solve->racedCost, expected.racedCost);

    server.stop();
}

// --------------------------------------------------------- lifecycle

TEST(ServeServer, StopDrainsAdmittedWorkBeforeReturning)
{
    ServerConfig cfg = tcpConfig();
    cfg.workers = 1;
    cfg.queueDepth = 8;
    AlignServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ServeClient client = ServeClient::overTcp(server.port());

    const std::string a = dnaString(150, 7), b = dnaString(150, 8);
    for (uint32_t i = 0; i < 6; ++i)
        ASSERT_TRUE(client.submitPairwise(i, fig2b(), a, b));

    server.stop(); // must block until all six responses are flushed

    const QueueStats stats = server.queueStats();
    EXPECT_EQ(stats.queued, 0u);
    EXPECT_EQ(stats.inflight, 0u);
    EXPECT_EQ(stats.enqueued, stats.completed);

    // Every admitted request's response is already in our socket
    // buffer, even though the daemon is down.  Requests caught by the
    // shutdown may have typed ShuttingDown replies interleaved.
    uint64_t okReplies = 0;
    Response response;
    while (client.receive(response))
        okReplies += response.status == Status::Ok;
    EXPECT_EQ(okReplies, stats.completed);
}

} // namespace
