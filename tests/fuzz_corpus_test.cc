/**
 * @file
 * Replays the committed fuzz seed corpus through the shared fuzz
 * harness (fuzz/harness.h) as a plain ctest, so every toolchain --
 * not just the Clang+libFuzzer CI job -- proves the parsers are
 * total on the inputs the fuzzer has already found interesting.
 *
 * The corpus directory is baked in at configure time
 * (RACELOGIC_CORPUS_DIR); an empty or missing corpus fails loudly
 * instead of silently passing on nothing.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "fuzz/harness.h"

namespace {

namespace fs = std::filesystem;

using HarnessFn = int (*)(const uint8_t *, size_t);

size_t
replayDirectory(const char *subdir, HarnessFn fn)
{
    const fs::path dir = fs::path(RACELOGIC_CORPUS_DIR) / subdir;
    size_t replayed = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::ifstream in(entry.path(), std::ios::binary);
        EXPECT_TRUE(in.good()) << entry.path();
        if (!in.good())
            continue;
        std::vector<uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        EXPECT_EQ(fn(bytes.data(), bytes.size()), 0) << entry.path();
        ++replayed;
    }
    return replayed;
}

TEST(FuzzCorpus, GfaSeedsReplayClean)
{
    EXPECT_GE(replayDirectory("gfa", racelogic::fuzz::gfaInput), 5u);
}

TEST(FuzzCorpus, FastaSeedsReplayClean)
{
    EXPECT_GE(replayDirectory("fasta", racelogic::fuzz::fastaInput),
              5u);
}

TEST(FuzzCorpus, WireSeedsReplayClean)
{
    EXPECT_GE(replayDirectory("wire", racelogic::fuzz::wireInput), 5u);
}

} // namespace
