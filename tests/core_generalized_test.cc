/**
 * @file
 * Tests for the generalized architecture (Section 5 / Fig. 8):
 * weight applicators under both delay encodings, the gate-level
 * generalized grid, and end-to-end BLOSUM62 score recovery.
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/core/generalized.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::DelayEncoding;
using core::GeneralizedAligner;
using core::GeneralizedCellSpec;
using core::GeneralizedGridCircuit;

// --------------------------------------------------------- cell spec

TEST(CellSpec, Blosum62Sizing)
{
    auto form = bio::toShortestPathForm(ScoreMatrix::blosum62());
    auto spec = GeneralizedCellSpec::fromMatrix(form.costs);
    EXPECT_EQ(spec.dynamicRange, 16);
    EXPECT_EQ(spec.counterBits, 5u); // counts 0..16 -> 5 bits
    EXPECT_EQ(spec.symbolBits, 5u);
    EXPECT_FALSE(spec.hasForbiddenPairs);
    EXPECT_EQ(spec.distinctGapWeights.size(), 1u);
    EXPECT_EQ(spec.distinctGapWeights[0], 10);
    // BLOSUM62 pair scores span -4..11 -> costs 1..16, many distinct.
    EXPECT_GT(spec.distinctPairWeights.size(), 10u);
    EXPECT_EQ(spec.distinctPairWeights.front(), 1);
    EXPECT_EQ(spec.distinctPairWeights.back(), 16);
}

TEST(CellSpec, InfMismatchDna)
{
    auto spec = GeneralizedCellSpec::fromMatrix(
        ScoreMatrix::dnaShortestPathInfMismatch());
    EXPECT_EQ(spec.dynamicRange, 1);
    EXPECT_TRUE(spec.hasForbiddenPairs);
    EXPECT_EQ(spec.distinctPairWeights,
              (std::vector<bio::Score>{1}));
}

// -------------------------------------------------- weight applicator

class ApplicatorTiming
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(ApplicatorTiming, DelaysBySelectedWeight)
{
    auto [weight, encoding_int] = GetParam();
    DelayEncoding encoding = encoding_int
                                 ? DelayEncoding::Binary
                                 : DelayEncoding::OneHot;
    // Build an applicator with weights {1..6} indexed by a 3-bit
    // select, dynamic range 6.
    GeneralizedCellSpec spec;
    spec.dynamicRange = 6;
    spec.counterBits = 3;
    spec.symbolBits = 3;
    std::vector<bio::Score> weights{1, 2, 3, 4, 5, 6};

    circuit::Netlist net;
    circuit::NetId pred = net.input("pred");
    circuit::Bus sel = circuit::buildInputBus(net, "s", 3);
    circuit::NetId out = core::buildWeightApplicator(
        net, pred, sel, weights, spec, encoding);
    net.validate();
    circuit::SyncSim sim(net);

    size_t index = static_cast<size_t>(weight - 1);
    for (unsigned b = 0; b < 3; ++b)
        sim.setInput(sel[b], (index >> b) & 1);

    // Fire the predecessor after 2 idle cycles; output must rise
    // exactly `weight` cycles later and stay high.
    sim.tickMany(2);
    EXPECT_FALSE(sim.value(out));
    sim.setInput(pred, true);
    auto fired = sim.runUntil(out, true, 20);
    ASSERT_TRUE(fired.has_value());
    EXPECT_EQ(*fired - 2, static_cast<uint64_t>(weight));
    sim.tickMany(4);
    EXPECT_TRUE(sim.value(out)) << "set-on-arrival holds the level";
}

INSTANTIATE_TEST_SUITE_P(
    WeightsAndEncodings, ApplicatorTiming,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0, 1)));

TEST(Applicator, ForbiddenCodeNeverFires)
{
    GeneralizedCellSpec spec;
    spec.dynamicRange = 3;
    spec.counterBits = 2;
    spec.symbolBits = 1;
    std::vector<bio::Score> weights{2, bio::kScoreInfinity};

    for (DelayEncoding enc :
         {DelayEncoding::OneHot, DelayEncoding::Binary}) {
        circuit::Netlist net;
        circuit::NetId pred = net.input("pred");
        circuit::Bus sel = circuit::buildInputBus(net, "s", 1);
        circuit::NetId out = core::buildWeightApplicator(
            net, pred, sel, weights, spec, enc);
        circuit::SyncSim sim(net);
        sim.setInput(sel[0], true); // select the forbidden code
        sim.setInput(pred, true);
        EXPECT_FALSE(sim.runUntil(out, true, 30).has_value());
    }
}

// ------------------------------------------------- gate-level fabric

class GeneralizedFabric : public ::testing::TestWithParam<int> {};

TEST_P(GeneralizedFabric, MatchesDpUnderRandomCostMatrix)
{
    util::Rng rng(4200 + GetParam());
    // Random race-ready cost matrix over DNA with weights in 1..5.
    ScoreMatrix costs(Alphabet::dna(), bio::ScoreKind::Cost);
    for (bio::Symbol s = 0; s < 4; ++s) {
        costs.setGap(s, rng.uniformInt(1, 5));
        for (bio::Symbol t = 0; t < 4; ++t)
            costs.setPair(s, t, rng.uniformInt(1, 5));
    }
    size_t n = 1 + rng.index(4);
    size_t m = 1 + rng.index(4);
    DelayEncoding enc = GetParam() % 2 ? DelayEncoding::Binary
                                       : DelayEncoding::OneHot;
    GeneralizedGridCircuit fabric(costs, n, m, enc);
    for (int pair = 0; pair < 2; ++pair) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), m);
        auto run = fabric.align(a, b);
        ASSERT_TRUE(run.completed);
        EXPECT_EQ(run.score, bio::globalScore(a, b, costs));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizedFabric,
                         ::testing::Range(0, 12));

TEST(GeneralizedFabric, BothEncodingsAgree)
{
    util::Rng rng(9);
    ScoreMatrix costs(Alphabet::dna(), bio::ScoreKind::Cost);
    for (bio::Symbol s = 0; s < 4; ++s) {
        costs.setGap(s, 2);
        for (bio::Symbol t = 0; t < 4; ++t)
            costs.setPair(s, t, s == t ? 1 : 4);
    }
    GeneralizedGridCircuit onehot(costs, 3, 3, DelayEncoding::OneHot);
    GeneralizedGridCircuit binary(costs, 3, 3, DelayEncoding::Binary);
    for (int trial = 0; trial < 4; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 3);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 3);
        auto r1 = onehot.align(a, b);
        auto r2 = binary.align(a, b);
        ASSERT_TRUE(r1.completed && r2.completed);
        EXPECT_EQ(r1.score, r2.score);
    }
}

TEST(GeneralizedFabric, CellInventoryTradeoff)
{
    // Section 5: one-hot cells carry N_DR flip-flops per edge while
    // binary cells carry log2(N_DR) plus comparator logic -- for a
    // large dynamic range the binary encoding must use fewer DFFs.
    ScoreMatrix costs(Alphabet::dna(), bio::ScoreKind::Cost);
    for (bio::Symbol s = 0; s < 4; ++s) {
        costs.setGap(s, 30);
        for (bio::Symbol t = 0; t < 4; ++t)
            costs.setPair(s, t, s == t ? 1 : 31);
    }
    auto onehot = GeneralizedGridCircuit::cellInventory(
        costs, DelayEncoding::OneHot);
    auto binary = GeneralizedGridCircuit::cellInventory(
        costs, DelayEncoding::Binary);
    size_t dff = size_t(circuit::GateType::Dff);
    EXPECT_GT(onehot[dff], binary[dff] * 3);
}

// ------------------------------------------------ behavioral aligner

class GeneralizedVsDp : public ::testing::TestWithParam<int> {};

TEST_P(GeneralizedVsDp, Blosum62ScoreRecoveredExactly)
{
    util::Rng rng(5000 + GetParam());
    GeneralizedAligner aligner(ScoreMatrix::blosum62());
    size_t n = 1 + rng.index(20);
    size_t m = 1 + rng.index(20);
    Sequence a = Sequence::random(rng, Alphabet::protein(), n);
    Sequence b = Sequence::random(rng, Alphabet::protein(), m);
    auto result = aligner.align(a, b);
    EXPECT_EQ(result.similarityScore,
              bio::globalScore(a, b, ScoreMatrix::blosum62()));
    EXPECT_EQ(result.latencyCycles,
              static_cast<sim::Tick>(result.racedCost));
}

TEST_P(GeneralizedVsDp, Pam250ScoreRecoveredExactly)
{
    util::Rng rng(6000 + GetParam());
    GeneralizedAligner aligner(ScoreMatrix::pam250());
    size_t n = 1 + rng.index(14);
    size_t m = 1 + rng.index(14);
    Sequence a = Sequence::random(rng, Alphabet::protein(), n);
    Sequence b = Sequence::random(rng, Alphabet::protein(), m);
    EXPECT_EQ(aligner.align(a, b).similarityScore,
              bio::globalScore(a, b, ScoreMatrix::pam250()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizedVsDp,
                         ::testing::Range(0, 15));

TEST(GeneralizedAligner, LatencyTracksSimilarity)
{
    // Higher similarity -> smaller converted cost -> lower latency:
    // "we must ensure that the highest similarity corresponds to the
    // smallest score and hence the lowest latency".
    util::Rng rng(31);
    GeneralizedAligner aligner(ScoreMatrix::blosum62());
    Sequence a = Sequence::random(rng, Alphabet::protein(), 12);
    auto same = aligner.align(a, a);
    Sequence noisy = mutate(rng, a, bio::MutationModel{0.3, 0.0, 0.0});
    auto near_result = aligner.align(a, noisy);
    Sequence other = Sequence::random(rng, Alphabet::protein(), 12);
    auto far = aligner.align(a, other);
    EXPECT_LE(same.latencyCycles, near_result.latencyCycles);
    EXPECT_LE(same.latencyCycles, far.latencyCycles);
}

} // namespace
