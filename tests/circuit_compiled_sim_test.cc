/**
 * @file
 * Equivalence suite for the compiled levelized bit-parallel kernel
 * (rl/circuit/compiled_sim.h) against the interpretive SyncSim
 * reference: settled values every cycle, final arrivals, and every
 * Activity field bit-identical -- on random netlists and on the race
 * fabrics, for 1-lane and 64-lane runs.
 */

#include <gtest/gtest.h>

#include "rl/circuit/compiled_sim.h"
#include "rl/circuit/sim_sync.h"
#include "rl/core/clock_gating.h"
#include "rl/core/gated_grid_circuit.h"
#include "rl/core/generalized.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/util/random.h"
#include "rl/util/strings.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using circuit::CompiledSim;
using circuit::Netlist;
using circuit::NetId;
using circuit::SyncSim;

// --------------------------------------------------- random netlists

struct RandomCircuit {
    Netlist net;
    std::vector<NetId> inputs;
};

/**
 * A random, structurally valid netlist: every gate type, DFFs with
 * and without enables, and register feedback loops through deferred
 * DFFs (set-on-arrival style) -- the shapes the race fabrics use,
 * plus non-monotone logic the fabrics never build.
 */
RandomCircuit
randomCircuit(util::Rng &rng, size_t n_inputs, size_t n_gates)
{
    RandomCircuit c;
    std::vector<NetId> nets;
    nets.push_back(c.net.constant(false));
    nets.push_back(c.net.constant(true));
    for (size_t i = 0; i < n_inputs; ++i) {
        NetId in = c.net.input(util::format("in%zu", i));
        c.inputs.push_back(in);
        nets.push_back(in);
    }
    // Deferred registers whose D closes a feedback loop at the end.
    std::vector<NetId> deferred;
    for (size_t i = 0; i < 3; ++i) {
        NetId d = c.net.dffDeferred(rng.bernoulli(0.5));
        deferred.push_back(d);
        nets.push_back(d);
    }

    auto pick = [&] { return nets[rng.index(nets.size())]; };
    for (size_t g = 0; g < n_gates; ++g) {
        NetId id = circuit::kNoNet;
        switch (rng.index(10)) {
          case 0: id = c.net.bufGate(pick()); break;
          case 1: id = c.net.notGate(pick()); break;
          case 2: id = c.net.andGate({pick(), pick(), pick()}); break;
          case 3: id = c.net.orGate({pick(), pick(), pick()}); break;
          case 4: id = c.net.nandGate({pick(), pick()}); break;
          case 5: id = c.net.norGate({pick(), pick()}); break;
          case 6: id = c.net.xorGate(pick(), pick()); break;
          case 7: id = c.net.xnorGate(pick(), pick()); break;
          case 8: id = c.net.mux(pick(), pick(), pick()); break;
          case 9: {
            NetId enable =
                rng.bernoulli(0.5) ? pick() : circuit::kNoNet;
            id = c.net.dff(pick(), rng.bernoulli(0.3), enable);
            break;
          }
        }
        nets.push_back(id);
    }
    for (NetId d : deferred)
        c.net.bindDff(d, nets[rng.index(nets.size())]);
    c.net.validate();
    return c;
}

void
expectActivityEqual(const circuit::Activity &got,
                    const circuit::Activity &want)
{
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.netToggles, want.netToggles);
    EXPECT_EQ(got.clockedDffCycles, want.clockedDffCycles);
    for (size_t t = 0; t < circuit::kGateTypeCount; ++t)
        EXPECT_EQ(got.togglesByType[t], want.togglesByType[t])
            << "gate type "
            << circuit::gateTypeName(static_cast<circuit::GateType>(t));
    EXPECT_EQ(got.perNet, want.perNet);
}

/** Element-wise sum of per-lane reference activities. */
circuit::Activity
sumActivities(const std::vector<std::unique_ptr<SyncSim>> &refs)
{
    circuit::Activity total;
    total.perNet.assign(refs.front()->activity().perNet.size(), 0);
    for (const auto &ref : refs) {
        const circuit::Activity &a = ref->activity();
        total.cycles += a.cycles;
        total.netToggles += a.netToggles;
        total.clockedDffCycles += a.clockedDffCycles;
        for (size_t t = 0; t < circuit::kGateTypeCount; ++t)
            total.togglesByType[t] += a.togglesByType[t];
        for (size_t n = 0; n < a.perNet.size(); ++n)
            total.perNet[n] += a.perNet[n];
    }
    return total;
}

TEST(CompiledSim, RandomNetlistsMatchSyncSimEveryCycle)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        util::Rng rng(seed);
        RandomCircuit c = randomCircuit(rng, 5, 60);
        CompiledSim fast(c.net);
        SyncSim ref(c.net);

        // perNet is pre-sized at construction in both kernels.
        ASSERT_EQ(fast.activity().perNet.size(), c.net.gateCount());
        ASSERT_EQ(ref.activity().perNet.size(), c.net.gateCount());

        for (uint64_t cycle = 0; cycle < 40; ++cycle) {
            for (NetId in : c.inputs) {
                bool v = rng.bernoulli(0.5);
                fast.setInput(in, v);
                ref.setInput(in, v);
            }
            for (NetId net = 0; net < c.net.gateCount(); ++net)
                ASSERT_EQ(fast.value(net), ref.value(net))
                    << "seed " << seed << " cycle " << cycle
                    << " net " << net;
            fast.tick();
            ref.tick();
        }
        expectActivityEqual(fast.activity(), ref.activity());
    }
}

TEST(CompiledSim, RandomNetlists64LaneMatchesPerLaneSyncSim)
{
    util::Rng rng(99);
    RandomCircuit c = randomCircuit(rng, 4, 50);
    constexpr unsigned kLanes = 64;
    CompiledSim fast(c.net, kLanes);
    std::vector<std::unique_ptr<SyncSim>> refs;
    refs.reserve(kLanes);
    for (unsigned l = 0; l < kLanes; ++l)
        refs.push_back(std::make_unique<SyncSim>(c.net));

    for (uint64_t cycle = 0; cycle < 24; ++cycle) {
        for (NetId in : c.inputs)
            for (unsigned l = 0; l < kLanes; ++l) {
                bool v = rng.bernoulli(0.5);
                fast.setInputLane(in, l, v);
                refs[l]->setInput(in, v);
            }
        for (NetId net = 0; net < c.net.gateCount(); ++net) {
            uint64_t word = fast.word(net);
            for (unsigned l = 0; l < kLanes; ++l)
                ASSERT_EQ((word >> l) & 1,
                          uint64_t(refs[l]->value(net)))
                    << "cycle " << cycle << " net " << net << " lane "
                    << l;
        }
        fast.tick();
        for (auto &ref : refs)
            ref->tick();
    }
    // Lane-summed activity == the sum of 64 lock-step references.
    expectActivityEqual(fast.activity(), sumActivities(refs));
}

TEST(CompiledSim, ResetMatchesSyncSimAndPreservesActivity)
{
    util::Rng rng(7);
    RandomCircuit c = randomCircuit(rng, 4, 40);
    CompiledSim fast(c.net);
    SyncSim ref(c.net);
    for (uint64_t cycle = 0; cycle < 10; ++cycle) {
        for (NetId in : c.inputs) {
            bool v = rng.bernoulli(0.5);
            fast.setInput(in, v);
            ref.setInput(in, v);
        }
        fast.tick();
        ref.tick();
    }
    fast.reset();
    ref.reset();
    EXPECT_EQ(fast.cycle(), 0u);
    for (NetId net = 0; net < c.net.gateCount(); ++net)
        ASSERT_EQ(fast.value(net), ref.value(net)) << "net " << net;
    expectActivityEqual(fast.activity(), ref.activity());

    // And the machines still agree after running on from reset.
    for (uint64_t cycle = 0; cycle < 10; ++cycle) {
        for (NetId in : c.inputs) {
            bool v = rng.bernoulli(0.5);
            fast.setInput(in, v);
            ref.setInput(in, v);
        }
        fast.tick();
        ref.tick();
        for (NetId net = 0; net < c.net.gateCount(); ++net)
            ASSERT_EQ(fast.value(net), ref.value(net)) << "net " << net;
    }
    expectActivityEqual(fast.activity(), ref.activity());
}

// --------------------------------------------------- race fabrics

TEST(CompiledSim, RaceGridFabricMatchesReferencePath)
{
    util::Rng rng(2014);
    core::RaceGridCircuit fabric(Alphabet::dna(), 6, 7);
    for (int round = 0; round < 4; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 6);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 7);
        auto fast = fabric.align(a, b);
        auto ref = fabric.alignReference(a, b);
        ASSERT_TRUE(fast.completed && ref.completed);
        EXPECT_EQ(fast.score, ref.score);
        EXPECT_EQ(fast.cyclesRun, ref.cyclesRun);
    }
    // Same race history on both kernels since construction -> the
    // whole Activity must match field for field.
    expectActivityEqual(fabric.sim().activity(),
                        fabric.referenceSim().activity());
}

TEST(CompiledSim, GatedFabricMatchesReferencePathAndSplitsClocks)
{
    util::Rng rng(77);
    const size_t n = 6;
    core::GatedRaceGridCircuit fabric(Alphabet::dna(), n, n, 2);
    auto [a, b] = bio::worstCasePair(rng, Alphabet::dna(), n);
    auto fast = fabric.align(a, b);
    auto ref = fabric.alignReference(a, b);
    ASSERT_TRUE(fast.completed && ref.completed);
    EXPECT_EQ(fast.score, ref.score);
    expectActivityEqual(fabric.sim().activity(),
                        fabric.referenceSim().activity());

    // The measured activity splits into the un-gated boundary frame
    // plus a gated cell array that beats the ungated fabric.
    const circuit::Activity &activity = fabric.sim().activity();
    core::MeasuredGatedClocks split =
        core::splitGatedClockActivity(activity, n, n);
    EXPECT_EQ(split.boundaryDffCycles + split.cellDffCycles,
              activity.clockedDffCycles);
    EXPECT_LT(split.cellDffCycles,
              3 * n * n * activity.cycles); // < every-cell-every-cycle
}

TEST(CompiledSim, GeneralizedFabricMatchesReferenceBothEncodings)
{
    ScoreMatrix blosum = ScoreMatrix::blosum62();
    core::GeneralizedAligner model(blosum);
    Sequence a(Alphabet::protein(), "HEAG");
    Sequence b(Alphabet::protein(), "PAW");
    for (core::DelayEncoding encoding :
         {core::DelayEncoding::Binary, core::DelayEncoding::OneHot}) {
        core::GeneralizedGridCircuit fabric(model.form().costs, 4, 3,
                                            encoding);
        auto fast = fabric.align(a, b);
        auto ref = fabric.alignReference(a, b);
        ASSERT_TRUE(fast.completed && ref.completed);
        EXPECT_EQ(fast.score, ref.score);
        expectActivityEqual(fabric.sim().activity(),
                            fabric.referenceSim().activity());
    }
}

// ----------------------------------------------- lane-packed races

TEST(CompiledSim, LanePackedGridRacesMatchSerialArrivals)
{
    util::Rng rng(4242);
    const size_t n = 8;
    core::RaceGridCircuit fabric(Alphabet::dna(), n, n);
    std::vector<Sequence> as, bs;
    for (unsigned l = 0; l < 64; ++l) {
        as.push_back(Sequence::random(rng, Alphabet::dna(), n));
        bs.push_back(Sequence::random(rng, Alphabet::dna(), n));
    }
    std::vector<core::LanePair> lanes;
    for (unsigned l = 0; l < 64; ++l)
        lanes.push_back({&as[l], &bs[l]});

    core::LaneBatchResult packed = fabric.alignLanes(lanes);
    ASSERT_EQ(packed.lanes.size(), 64u);
    uint64_t slowest = 0;
    for (unsigned l = 0; l < 64; ++l) {
        auto serial = fabric.align(as[l], bs[l]);
        ASSERT_TRUE(serial.completed);
        ASSERT_TRUE(packed.lanes[l].completed) << "lane " << l;
        EXPECT_EQ(packed.lanes[l].score, serial.score) << "lane " << l;
        slowest = std::max(slowest,
                           static_cast<uint64_t>(serial.score));
    }
    // The lock-step word runs exactly to the slowest lane's arrival,
    // and the un-gated fabric clocks every DFF lane every cycle.
    EXPECT_EQ(packed.cyclesRun, slowest);
    EXPECT_EQ(packed.activity.cycles, 64 * packed.cyclesRun);
    EXPECT_EQ(packed.activity.clockedDffCycles,
              fabric.netlist().dffCount() * packed.activity.cycles);
}

TEST(CompiledSim, LanePackedBudgetActsAsThresholdPerLane)
{
    // One near-identical and one hopeless candidate under a shared
    // lock-step budget: the near lane fires within it, the far lane
    // does not (Section 6 screening on the packed word).
    core::RaceGridCircuit fabric(Alphabet::dna(), 4, 4);
    Sequence query(Alphabet::dna(), "ACTG");
    Sequence near_seq(Alphabet::dna(), "ACTG"); // 4 matches: score 4
    Sequence far(Alphabet::dna(), "TTTT"); // 1 match + 6 indels: 7
    std::vector<core::LanePair> lanes{{&query, &near_seq},
                                      {&query, &far}};
    core::LaneBatchResult packed = fabric.alignLanes(lanes, 5);
    ASSERT_EQ(packed.lanes.size(), 2u);
    EXPECT_TRUE(packed.lanes[0].completed);
    EXPECT_EQ(packed.lanes[0].score, 4);
    EXPECT_FALSE(packed.lanes[1].completed);
    EXPECT_EQ(packed.cyclesRun, 5u);
}

TEST(CompiledSim, LanePackedMatchesLockstepSyncSimActivity)
{
    // The strongest cross-check: an 8-lane packed race against eight
    // SyncSims driven by name in lock-step for exactly the same
    // cycles -- values, arrivals, and summed activity all equal.
    util::Rng rng(31);
    const size_t n = 5;
    core::RaceGridCircuit fabric(Alphabet::dna(), n, n);
    const Netlist &net = fabric.netlist();
    constexpr unsigned kLanes = 8;
    std::vector<Sequence> as, bs;
    for (unsigned l = 0; l < kLanes; ++l) {
        as.push_back(Sequence::random(rng, Alphabet::dna(), n));
        bs.push_back(Sequence::random(rng, Alphabet::dna(), n));
    }
    std::vector<core::LanePair> lanes;
    for (unsigned l = 0; l < kLanes; ++l)
        lanes.push_back({&as[l], &bs[l]});
    core::LaneBatchResult packed = fabric.alignLanes(lanes);

    const unsigned bits = Alphabet::dna().bitsPerSymbol();
    std::vector<std::unique_ptr<SyncSim>> refs;
    refs.reserve(kLanes);
    for (unsigned l = 0; l < kLanes; ++l) {
        refs.push_back(std::make_unique<SyncSim>(net));
        SyncSim &ref = *refs.back();
        for (size_t i = 0; i < n; ++i)
            for (unsigned bit = 0; bit < bits; ++bit) {
                ref.setInput(util::format("a%zu_%u", i, bit),
                             (as[l][i] >> bit) & 1);
                ref.setInput(util::format("b%zu_%u", i, bit),
                             (bs[l][i] >> bit) & 1);
            }
        ref.setInput("go", true);
        ref.tickMany(packed.cyclesRun); // lock-step to the word end
    }
    expectActivityEqual(packed.activity, sumActivities(refs));
}

} // namespace
