/**
 * @file
 * Tests for Section 6 threshold screening: exactness of the verdict,
 * cycle accounting, and the throughput gain on realistic workloads.
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/core/threshold.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::ThresholdScreener;

TEST(Threshold, SimilarPairReportsExactScoreAndCycles)
{
    ThresholdScreener screener(
        ScoreMatrix::dnaShortestPathInfMismatch(), 8);
    Sequence a(Alphabet::dna(), "ACGTAC");
    auto outcome = screener.screen(a, a);
    EXPECT_TRUE(outcome.similar);
    EXPECT_EQ(outcome.score, 6);
    EXPECT_EQ(outcome.cyclesUsed, 6u);
}

TEST(Threshold, DissimilarPairAbortsAtThreshold)
{
    ThresholdScreener screener(
        ScoreMatrix::dnaShortestPathInfMismatch(), 5);
    Sequence a(Alphabet::dna(), "AAAAAA");
    Sequence b(Alphabet::dna(), "CCCCCC");
    auto outcome = screener.screen(a, b); // true cost 12
    EXPECT_FALSE(outcome.similar);
    EXPECT_EQ(outcome.score, bio::kScoreInfinity);
    EXPECT_EQ(outcome.cyclesUsed, 5u)
        << "the engine learns the verdict at the threshold cycle";
}

TEST(Threshold, BoundaryScoreEqualToThresholdIsSimilar)
{
    ThresholdScreener screener(
        ScoreMatrix::dnaShortestPathInfMismatch(), 6);
    Sequence a(Alphabet::dna(), "ACGTAC");
    auto outcome = screener.screen(a, a); // score 6 == threshold
    EXPECT_TRUE(outcome.similar);
    EXPECT_EQ(outcome.cyclesUsed, 6u);
}

class ThresholdExactness : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdExactness, VerdictMatchesDpFilterExactly)
{
    // Aborting early can never misclassify: arrival times are
    // monotone, so "not fired by T" == "score > T".
    util::Rng rng(7000 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    bio::Score threshold = 4 + rng.uniformInt(0, 12);
    ThresholdScreener screener(m, threshold);
    Sequence query = Sequence::random(rng, Alphabet::dna(), 12);
    for (int candidate = 0; candidate < 12; ++candidate) {
        Sequence c =
            rng.bernoulli(0.5)
                ? mutate(rng, query, bio::MutationModel::uniform(0.15))
                : Sequence::random(rng, Alphabet::dna(), 12);
        if (c.empty())
            continue;
        auto outcome = screener.screen(query, c);
        bio::Score truth = bio::globalScore(query, c, m);
        EXPECT_EQ(outcome.similar, truth <= threshold);
        if (outcome.similar) {
            EXPECT_EQ(outcome.score, truth);
        }
        EXPECT_LE(outcome.cyclesUsed,
                  static_cast<sim::Tick>(threshold));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdExactness,
                         ::testing::Range(0, 15));

TEST(Threshold, DatabaseScreeningAggregates)
{
    util::Rng rng(91);
    auto wl = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), 24, 60, 0.2,
        bio::MutationModel::uniform(0.08));
    ThresholdScreener screener(
        ScoreMatrix::dnaShortestPathInfMismatch(), 32);
    auto stats = screener.screenDatabase(wl.query, wl.database);
    EXPECT_EQ(stats.candidates, 60u);
    EXPECT_EQ(stats.accepted.size(), 60u);
    EXPECT_LE(stats.cyclesWithThreshold, stats.cyclesFullRace);
    EXPECT_GE(stats.speedup(), 1.0);
}

TEST(Threshold, UnrelatedDatabaseGivesLargeSpeedup)
{
    // With rare matches, aborted races dominate: busy cycles drop
    // from ~2N (complete-mismatch full race) to the threshold.
    util::Rng rng(92);
    size_t n = 40;
    Sequence query = Sequence::random(rng, Alphabet::dna(), n);
    std::vector<Sequence> database;
    for (int i = 0; i < 50; ++i)
        database.push_back(Sequence::random(rng, Alphabet::dna(), n));
    bio::Score threshold = 44; // just above best-case n cycles
    ThresholdScreener screener(
        ScoreMatrix::dnaShortestPathInfMismatch(), threshold);
    auto stats = screener.screenDatabase(query, database);
    EXPECT_GT(stats.speedup(), 1.2);
}

TEST(Threshold, RelatedEntriesAreAccepted)
{
    util::Rng rng(93);
    Sequence query = Sequence::random(rng, Alphabet::dna(), 30);
    Sequence relative = mutate(rng, query,
                              bio::MutationModel{0.05, 0.0, 0.0});
    ThresholdScreener screener(
        ScoreMatrix::dnaShortestPathInfMismatch(), 40);
    EXPECT_TRUE(screener.screen(query, relative).similar);
}

} // namespace
