/**
 * @file
 * The telemetry core, pinned:
 *
 *  1. Log2 bucket boundaries are exact: every power of two starts a
 *     new bucket, the value below it closes the previous one.
 *  2. Percentile estimates are bounded: the estimate always lies
 *     within the bucket that holds the true value (<= 2x error).
 *  3. Snapshots stay coherent while writer threads hammer the same
 *     metrics (run under the TSan CI job): histogram count always
 *     equals its bucket sum, counters are monotone across snapshots.
 *  4. Name collisions and malformed names are rejected with a typed
 *     rl::Status, and the failed registration changes nothing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rl/telemetry/registry.h"
#include "rl/telemetry/trace.h"

namespace {

using namespace racelogic;
using namespace racelogic::telemetry;

// ------------------------------------------------- bucket boundaries

TEST(TelemetryHistogram, BucketBoundariesAreExactPowersOfTwo)
{
    // 0 is its own bucket; 1 opens bucket 1; every 2^k for k >= 1
    // opens bucket k+1 and 2^k - 1 closes bucket k.
    EXPECT_EQ(histogramBucket(0), 0u);
    EXPECT_EQ(histogramBucket(1), 1u);
    for (size_t k = 1; k + 1 < kHistogramBuckets; ++k) {
        const uint64_t pow2 = uint64_t(1) << k;
        EXPECT_EQ(histogramBucket(pow2), k + 1) << "value " << pow2;
        EXPECT_EQ(histogramBucket(pow2 - 1), k) << "value " << pow2 - 1;
    }
    // Everything at or past 2^(kBuckets-2) lands in the open bucket.
    const uint64_t openLower = uint64_t(1) << (kHistogramBuckets - 2);
    EXPECT_EQ(histogramBucket(openLower), kHistogramBuckets - 1);
    EXPECT_EQ(histogramBucket(~uint64_t(0)), kHistogramBuckets - 1);

    // The bounds agree with the bucket function on both edges.
    for (size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
        EXPECT_EQ(histogramBucket(histogramBucketLower(i)), i);
        EXPECT_EQ(histogramBucket(histogramBucketUpper(i)), i);
    }
}

TEST(TelemetryHistogram, RecordedValuesLandInTheirBuckets)
{
    Registry registry;
    Histogram *h = registry.addHistogram("h").valueOrFatal();
    h->record(0);
    h->record(1);
    h->record(2);
    h->record(3);
    h->record(1024);
    const Snapshot snap = registry.snapshot();
    const HistogramSnapshot *hs = snap.histogram("h");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, 5u);
    EXPECT_EQ(hs->sum, 0u + 1 + 2 + 3 + 1024);
    EXPECT_EQ(hs->buckets[0], 1u);  // 0
    EXPECT_EQ(hs->buckets[1], 1u);  // 1
    EXPECT_EQ(hs->buckets[2], 2u);  // 2, 3
    EXPECT_EQ(hs->buckets[11], 1u); // 1024 = 2^10 -> bucket 11
}

// ----------------------------------------------- percentile bounds

TEST(TelemetryHistogram, PercentileEstimateStaysInsideTheTrueBucket)
{
    Registry registry;
    Histogram *h = registry.addHistogram("lat").valueOrFatal();
    // A known distribution: 900 fast (around 100), 90 medium
    // (around 1000), 10 slow (around 50000).
    for (int i = 0; i < 900; ++i)
        h->record(100);
    for (int i = 0; i < 90; ++i)
        h->record(1000);
    for (int i = 0; i < 10; ++i)
        h->record(50000);
    const HistogramSnapshot *hs =
        nullptr; // keep the snapshot alive for the pointer
    const Snapshot snap = registry.snapshot();
    hs = snap.histogram("lat");
    ASSERT_NE(hs, nullptr);

    // Every percentile's true value is exactly known here; the
    // estimate must fall inside the log2 bucket containing it.
    struct Case {
        double p;
        uint64_t truth;
    };
    for (const Case &c : std::initializer_list<Case>{
             {50, 100}, {90, 100}, {95, 1000}, {99, 1000},
             {99.5, 50000}, {99.9, 50000}}) {
        const double estimate = hs->percentile(c.p);
        const size_t bucket = histogramBucket(c.truth);
        EXPECT_GE(estimate,
                  double(histogramBucketLower(bucket)))
            << "p" << c.p;
        EXPECT_LE(estimate,
                  double(histogramBucketUpper(bucket)))
            << "p" << c.p;
        // The log2 guarantee: off by at most 2x in either direction.
        EXPECT_GE(estimate, double(c.truth) / 2.0) << "p" << c.p;
        EXPECT_LE(estimate, double(c.truth) * 2.0) << "p" << c.p;
    }

    // Degenerate inputs stay finite and ordered.
    EXPECT_EQ(HistogramSnapshot{}.percentile(50), 0.0);
    EXPECT_LE(hs->percentile(1), hs->percentile(99.99));
}

// ------------------------------------- snapshot coherence under fire

TEST(TelemetryRegistry, SnapshotsStayCoherentWhileWritersHammer)
{
    Registry registry;
    Counter *requests = registry.addCounter("req").valueOrFatal();
    Histogram *latency = registry.addHistogram("lat").valueOrFatal();

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    const size_t threads = 4;
    for (size_t t = 0; t < threads; ++t)
        writers.emplace_back([&, t] {
            uint64_t v = t;
            while (!stop.load(std::memory_order_relaxed)) {
                requests->add(1, t);
                latency->record(v % 5000, t);
                ++v;
            }
        });

    uint64_t lastCount = 0, lastRequests = 0;
    for (int round = 0; round < 200; ++round) {
        const Snapshot snap = registry.snapshot();
        const HistogramSnapshot *hs = snap.histogram("lat");
        const CounterSnapshot *cs = snap.counter("req");
        ASSERT_NE(hs, nullptr);
        ASSERT_NE(cs, nullptr);
        // Internal coherence: count is derived from the same bucket
        // reads it summarizes.
        uint64_t bucketSum = 0;
        for (uint64_t b : hs->buckets)
            bucketSum += b;
        EXPECT_EQ(hs->count, bucketSum);
        // Monotonicity across snapshots: counters never go back.
        EXPECT_GE(hs->count, lastCount);
        EXPECT_GE(cs->value, lastRequests);
        lastCount = hs->count;
        lastRequests = cs->value;
    }
    stop.store(true);
    for (std::thread &w : writers)
        w.join();

    // Quiesced: the final snapshot agrees with the live metrics.
    const Snapshot final = registry.snapshot();
    EXPECT_EQ(final.counter("req")->value, requests->total());
    EXPECT_EQ(final.histogram("lat")->count, latency->count());
    EXPECT_EQ(final.histogram("lat")->sum, latency->sum());
}

// --------------------------------------------- typed name rejection

TEST(TelemetryRegistry, DuplicateAndMalformedNamesAreTypedErrors)
{
    Registry registry;
    ASSERT_TRUE(registry.addCounter("rl_requests_total").ok());

    // Duplicate within a kind ...
    Expected<Counter *> dupSame =
        registry.addCounter("rl_requests_total");
    ASSERT_FALSE(dupSame.ok());
    EXPECT_EQ(dupSame.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(dupSame.status().message().find("duplicate"),
              std::string::npos);

    // ... and across kinds: one namespace for all metrics.
    Expected<Histogram *> dupCross =
        registry.addHistogram("rl_requests_total");
    ASSERT_FALSE(dupCross.ok());
    EXPECT_EQ(dupCross.status().code(), ErrorCode::InvalidArgument);

    // Malformed names are rejected before they can reach a scrape.
    for (const char *bad : {"", "1starts_with_digit", "has space",
                            "has-dash", "quote\"le"}) {
        Expected<Gauge *> verdict = registry.addGauge(bad);
        ASSERT_FALSE(verdict.ok()) << "name '" << bad << "'";
        EXPECT_EQ(verdict.status().code(), ErrorCode::InvalidArgument);
    }

    // Failed registrations changed nothing.
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.snapshot().counters.size(), 1u);
}

// ------------------------------------------------- prometheus text

TEST(TelemetrySnapshot, PrometheusRenderCarriesEverySeries)
{
    Registry registry;
    registry.addCounter("rl_requests_total").valueOrFatal()->add(7);
    registry.addGauge("rl_scratch_high_water")
        .valueOrFatal()
        ->max(42);
    Histogram *h = registry.addHistogram("rl_solve_us").valueOrFatal();
    h->record(3);
    h->record(900);

    const std::string text = registry.snapshot().renderPrometheus();
    EXPECT_NE(text.find("# TYPE rl_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("rl_requests_total 7"), std::string::npos);
    EXPECT_NE(text.find("# TYPE rl_scratch_high_water gauge"),
              std::string::npos);
    EXPECT_NE(text.find("rl_scratch_high_water 42"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE rl_solve_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("rl_solve_us_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("rl_solve_us_sum 903"), std::string::npos);
    EXPECT_NE(text.find("rl_solve_us_count 2"), std::string::npos);
}

// ------------------------------------------------------ trace math

TEST(TelemetryTrace, FinalizeMakesStagesNonnegativeAndExhaustive)
{
    using Clock = RequestTrace::Clock;
    const Clock::time_point t0 = Clock::now();
    auto at = [&](int64_t us) {
        return t0 + std::chrono::microseconds(us);
    };

    RequestTrace trace;
    trace.readStart = at(0);
    trace.readDone = at(10);
    trace.decodeDone = at(15);
    trace.admitDone = at(18);
    trace.dispatchStart = at(118); // 100us queue wait
    trace.solveStart = at(120);
    trace.solveDone = at(620);
    trace.encodeDone = at(625);
    trace.writeDone = at(640);
    trace.finalize();

    EXPECT_EQ(trace.readUs(), 10u);
    EXPECT_EQ(trace.decodeUs(), 5u);
    EXPECT_EQ(trace.admitUs(), 3u);
    EXPECT_EQ(trace.queueWaitUs(), 100u);
    EXPECT_EQ(trace.dispatchUs(), 2u);
    EXPECT_EQ(trace.solveUs(), 500u);
    EXPECT_EQ(trace.encodeUs(), 5u);
    EXPECT_EQ(trace.writeUs(), 15u);
    EXPECT_EQ(trace.totalUs(), 640u);
    EXPECT_EQ(trace.readUs() + trace.decodeUs() + trace.admitUs() +
                  trace.queueWaitUs() + trace.dispatchUs() +
                  trace.solveUs() + trace.encodeUs() + trace.writeUs(),
              trace.totalUs());

    // A rejected request never reaches the queue: the unset stamps
    // collapse to zero-length stages, not garbage durations.
    RequestTrace bounced;
    bounced.readStart = at(0);
    bounced.readDone = at(4);
    bounced.decodeDone = at(6);
    bounced.writeDone = at(9); // admit..encode never stamped
    bounced.finalize();
    EXPECT_EQ(bounced.admitUs(), 0u);
    EXPECT_EQ(bounced.queueWaitUs(), 0u);
    EXPECT_EQ(bounced.solveUs(), 0u);
    EXPECT_EQ(bounced.writeUs(), 3u);
    EXPECT_EQ(bounced.totalUs(), 9u);
}

} // namespace
