/**
 * @file
 * Tests for the gate-level substrate: netlist structure, simulator
 * timing semantics, activity counting, and the structural builders
 * (delay chains, saturating counters, set-on-arrival, mux trees).
 */

#include <gtest/gtest.h>

#include "rl/circuit/builders.h"
#include "rl/circuit/netlist.h"
#include "rl/circuit/sim_sync.h"

namespace {

using namespace racelogic;
using circuit::Bus;
using circuit::GateType;
using circuit::Netlist;
using circuit::NetId;
using circuit::SyncSim;

// ------------------------------------------------------------ netlist

TEST(Netlist, TypeCounts)
{
    Netlist n;
    NetId a = n.input("a");
    NetId b = n.input("b");
    n.andGate({a, b});
    n.orGate({a, b});
    n.dff(a);
    auto counts = n.typeCounts();
    EXPECT_EQ(counts[size_t(GateType::Input)], 2u);
    EXPECT_EQ(counts[size_t(GateType::And)], 1u);
    EXPECT_EQ(counts[size_t(GateType::Or)], 1u);
    EXPECT_EQ(n.dffCount(), 1u);
}

TEST(Netlist, FindInputByName)
{
    Netlist n;
    NetId a = n.input("go");
    EXPECT_EQ(n.findInput("go"), a);
    EXPECT_EQ(n.inputName(a), "go");
}

TEST(Netlist, CombOrderRespectsDependencies)
{
    Netlist n;
    NetId a = n.input("a");
    NetId x = n.notGate(a);
    NetId y = n.andGate({a, x});
    auto order = n.combOrder();
    std::vector<size_t> pos(n.gateCount());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    EXPECT_LT(pos[a], pos[x]);
    EXPECT_LT(pos[x], pos[y]);
}

TEST(Netlist, DffBreaksCycles)
{
    // q = DFF(not q) is a legal divide-by-two; no combinational cycle.
    Netlist n;
    NetId q = n.dffDeferred();
    NetId d = n.notGate(q);
    n.bindDff(q, d);
    n.validate();
    SyncSim sim(n);
    EXPECT_FALSE(sim.value(q));
    sim.tick();
    EXPECT_TRUE(sim.value(q));
    sim.tick();
    EXPECT_FALSE(sim.value(q));
}

TEST(NetlistDeath, CombinationalCycleDetected)
{
    Netlist n;
    NetId a = n.input("a");
    // Build a cycle through an AND by abusing deferred DFF... not
    // possible; instead feed a gate its own output via a second
    // netlist path: create two ANDs referencing each other is
    // impossible append-only, so validate() can only see cycles via
    // bindDff misuse -- which is prevented.  What we CAN check: an
    // unbound deferred DFF is rejected.
    n.dffDeferred();
    (void)a;
    EXPECT_DEATH(n.validate(), "unbound");
}

TEST(NetlistDeath, DoubleBindRejected)
{
    Netlist n;
    NetId a = n.input("a");
    NetId q = n.dffDeferred();
    n.bindDff(q, a);
    EXPECT_DEATH(n.bindDff(q, a), "already bound");
}

// ---------------------------------------------------- gate semantics

TEST(SyncSim, CombinationalGateTruthTables)
{
    Netlist n;
    NetId a = n.input("a");
    NetId b = n.input("b");
    NetId g_and = n.andGate({a, b});
    NetId g_or = n.orGate({a, b});
    NetId g_nand = n.nandGate({a, b});
    NetId g_nor = n.norGate({a, b});
    NetId g_xor = n.xorGate(a, b);
    NetId g_xnor = n.xnorGate(a, b);
    NetId g_not = n.notGate(a);
    NetId g_buf = n.bufGate(a);
    SyncSim sim(n);
    for (int av = 0; av <= 1; ++av) {
        for (int bv = 0; bv <= 1; ++bv) {
            sim.setInput(a, av);
            sim.setInput(b, bv);
            EXPECT_EQ(sim.value(g_and), av && bv);
            EXPECT_EQ(sim.value(g_or), av || bv);
            EXPECT_EQ(sim.value(g_nand), !(av && bv));
            EXPECT_EQ(sim.value(g_nor), !(av || bv));
            EXPECT_EQ(sim.value(g_xor), av != bv);
            EXPECT_EQ(sim.value(g_xnor), av == bv);
            EXPECT_EQ(sim.value(g_not), !av);
            EXPECT_EQ(sim.value(g_buf), !!av);
        }
    }
}

TEST(SyncSim, MuxSelects)
{
    Netlist n;
    NetId s = n.input("s");
    NetId d0 = n.input("d0");
    NetId d1 = n.input("d1");
    NetId m = n.mux(s, d0, d1);
    SyncSim sim(n);
    sim.setInput(d0, false);
    sim.setInput(d1, true);
    sim.setInput(s, false);
    EXPECT_FALSE(sim.value(m));
    sim.setInput(s, true);
    EXPECT_TRUE(sim.value(m));
}

TEST(SyncSim, DffDelaysExactlyOneCycle)
{
    Netlist n;
    NetId a = n.input("a");
    NetId q = n.dff(a);
    SyncSim sim(n);
    sim.setInput(a, true);
    EXPECT_FALSE(sim.value(q)) << "visible only after the edge";
    sim.tick();
    EXPECT_TRUE(sim.value(q));
}

TEST(SyncSim, DffEnableGatesCapture)
{
    Netlist n;
    NetId d = n.input("d");
    NetId en = n.input("en");
    NetId q = n.dff(d, false, en);
    SyncSim sim(n);
    sim.setInput(d, true);
    sim.setInput(en, false);
    sim.tick();
    EXPECT_FALSE(sim.value(q)) << "disabled DFF holds";
    sim.setInput(en, true);
    sim.tick();
    EXPECT_TRUE(sim.value(q));
    // Gated cycles are not charged to the clock activity.
    EXPECT_EQ(sim.activity().clockedDffCycles, 1u);
}

TEST(SyncSim, DffInitValue)
{
    Netlist n;
    NetId a = n.input("a");
    NetId q = n.dff(a, /*init=*/true);
    SyncSim sim(n);
    EXPECT_TRUE(sim.value(q));
    sim.tick(); // captures a = 0
    EXPECT_FALSE(sim.value(q));
}

TEST(SyncSim, RunUntilFindsArrivalCycle)
{
    Netlist n;
    NetId a = n.input("a");
    NetId q = circuit::buildDelayChain(n, a, 5);
    SyncSim sim(n);
    sim.setInput(a, true);
    auto cycle = sim.runUntil(q, true, 100);
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(*cycle, 5u);
}

TEST(SyncSim, RunUntilGivesUp)
{
    Netlist n;
    NetId a = n.input("a");
    NetId q = circuit::buildDelayChain(n, a, 10);
    SyncSim sim(n);
    sim.setInput(a, true);
    EXPECT_FALSE(sim.runUntil(q, true, 3).has_value());
}

TEST(SyncSim, ResetRestoresInitAndClearsInputs)
{
    Netlist n;
    NetId a = n.input("a");
    NetId q = n.dff(a);
    SyncSim sim(n);
    sim.setInput(a, true);
    sim.tick();
    EXPECT_TRUE(sim.value(q));
    sim.reset();
    EXPECT_EQ(sim.cycle(), 0u);
    EXPECT_FALSE(sim.value(q));
    EXPECT_FALSE(sim.value(a));
}

TEST(SyncSim, ActivityCountsClockAndToggles)
{
    Netlist n;
    NetId a = n.input("a");
    n.dff(a);
    n.dff(a);
    SyncSim sim(n);
    sim.clearActivity();
    sim.tickMany(10);
    EXPECT_EQ(sim.activity().cycles, 10u);
    EXPECT_EQ(sim.activity().clockedDffCycles, 20u);
    // Constant-zero input: no net toggles at all.
    EXPECT_EQ(sim.activity().netToggles, 0u);
    sim.setInput(a, true);
    sim.tick();
    EXPECT_GT(sim.activity().netToggles, 0u);
}

TEST(SyncSim, MonotoneRaceSignalTogglesOncePerNet)
{
    // A delay chain driven by a step input: every net rises exactly
    // once -- the "charged once per comparison" premise of the
    // paper's energy analysis.
    Netlist n;
    NetId a = n.input("a");
    circuit::buildDelayChain(n, a, 8);
    SyncSim sim(n);
    sim.clearActivity();
    sim.setInput(a, true);
    sim.tickMany(12);
    EXPECT_EQ(sim.activity().netToggles, 1u + 8u); // input + 8 stages
}

// ----------------------------------------------------------- builders

TEST(Builders, TappedDelayChainHoldsLevels)
{
    Netlist n;
    NetId a = n.input("a");
    Bus taps = circuit::buildTappedDelayChain(n, a, 4);
    ASSERT_EQ(taps.size(), 5u);
    SyncSim sim(n);
    sim.setInput(a, true);
    for (uint64_t c = 0; c <= 4; ++c) {
        for (uint64_t k = 0; k <= 4; ++k)
            EXPECT_EQ(sim.value(taps[k]), k <= c)
                << "tap " << k << " cycle " << c;
        sim.tick();
    }
}

TEST(Builders, EqualsConstMatchesExactly)
{
    Netlist n;
    Bus bus = circuit::buildInputBus(n, "v", 3);
    NetId eq5 = circuit::buildEqualsConst(n, bus, 5);
    SyncSim sim(n);
    for (uint64_t v = 0; v < 8; ++v) {
        for (unsigned b = 0; b < 3; ++b)
            sim.setInput(bus[b], (v >> b) & 1);
        EXPECT_EQ(sim.value(eq5), v == 5) << "value " << v;
    }
}

TEST(Builders, SaturatingCounterCountsAndSaturates)
{
    Netlist n;
    NetId en = n.input("en");
    Bus count = circuit::buildSaturatingCounter(n, en, 3);
    SyncSim sim(n);
    auto read = [&] {
        uint64_t v = 0;
        for (size_t b = 0; b < count.size(); ++b)
            v |= uint64_t(sim.value(count[b])) << b;
        return v;
    };
    EXPECT_EQ(read(), 0u);
    sim.tickMany(3);
    EXPECT_EQ(read(), 0u) << "disabled counter holds";
    sim.setInput(en, true);
    for (uint64_t expect = 1; expect <= 7; ++expect) {
        sim.tick();
        EXPECT_EQ(read(), expect);
    }
    sim.tickMany(5);
    EXPECT_EQ(read(), 7u) << "saturates at all-ones, no wraparound";
}

TEST(Builders, SaturatingCounterPausesWithEnable)
{
    Netlist n;
    NetId en = n.input("en");
    Bus count = circuit::buildSaturatingCounter(n, en, 4);
    SyncSim sim(n);
    sim.setInput(en, true);
    sim.tickMany(5);
    sim.setInput(en, false);
    sim.tickMany(3);
    uint64_t v = 0;
    for (size_t b = 0; b < count.size(); ++b)
        v |= uint64_t(sim.value(count[b])) << b;
    EXPECT_EQ(v, 5u);
}

TEST(Builders, SetOnArrivalFiresSameCycleAndLatches)
{
    Netlist n;
    NetId pulse = n.input("pulse");
    NetId out = circuit::buildSetOnArrival(n, pulse);
    SyncSim sim(n);
    EXPECT_FALSE(sim.value(out));
    sim.setInput(pulse, true);
    EXPECT_TRUE(sim.value(out)) << "fires combinationally";
    sim.tick();
    sim.setInput(pulse, false);
    EXPECT_TRUE(sim.value(out)) << "latched after the pulse ends";
    sim.tickMany(3);
    EXPECT_TRUE(sim.value(out));
}

TEST(Builders, MuxTreeSelectsAllSlots)
{
    Netlist n;
    Bus sel = circuit::buildInputBus(n, "s", 2);
    std::vector<NetId> data;
    for (int i = 0; i < 4; ++i)
        data.push_back(n.input("d" + std::to_string(i)));
    NetId out = circuit::buildMuxTree(n, sel, data);
    SyncSim sim(n);
    for (unsigned chosen = 0; chosen < 4; ++chosen) {
        for (unsigned i = 0; i < 4; ++i)
            sim.setInput(data[i], i == chosen);
        for (unsigned pick = 0; pick < 4; ++pick) {
            sim.setInput(sel[0], pick & 1);
            sim.setInput(sel[1], (pick >> 1) & 1);
            EXPECT_EQ(sim.value(out), pick == chosen);
        }
    }
}

TEST(Builders, MuxTreePadsMissingSlotsWithZero)
{
    Netlist n;
    Bus sel = circuit::buildInputBus(n, "s", 2);
    NetId d0 = n.constant(true);
    NetId out = circuit::buildMuxTree(n, sel, {d0});
    SyncSim sim(n);
    sim.setInput(sel[0], true); // select slot 1 (absent)
    EXPECT_FALSE(sim.value(out));
    sim.setInput(sel[0], false);
    EXPECT_TRUE(sim.value(out));
}

TEST(Builders, MatchComparator)
{
    Netlist n;
    Bus a = circuit::buildInputBus(n, "a", 2);
    Bus b = circuit::buildInputBus(n, "b", 2);
    NetId match = circuit::buildMatchComparator(n, a, b);
    SyncSim sim(n);
    for (unsigned av = 0; av < 4; ++av) {
        for (unsigned bv = 0; bv < 4; ++bv) {
            sim.setInput(a[0], av & 1);
            sim.setInput(a[1], (av >> 1) & 1);
            sim.setInput(b[0], bv & 1);
            sim.setInput(b[1], (bv >> 1) & 1);
            EXPECT_EQ(sim.value(match), av == bv);
        }
    }
}

TEST(Builders, DelayChainZeroIsWire)
{
    Netlist n;
    NetId a = n.input("a");
    EXPECT_EQ(circuit::buildDelayChain(n, a, 0), a);
}

} // namespace
