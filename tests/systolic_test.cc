/**
 * @file
 * Tests for the Lipton-Lopresti systolic baseline: mod-4 encoding
 * soundness, exact score reconstruction against the DP oracle,
 * latency formulas, and the always-clocked activity profile.
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/systolic/encoding.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using systolic::LiptonLoprestiArray;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

// ----------------------------------------------------- mod-4 helpers

TEST(Mod4, WrapAndAdd)
{
    EXPECT_EQ(systolic::toMod4(0), 0);
    EXPECT_EQ(systolic::toMod4(7), 3);
    EXPECT_EQ(systolic::mod4Add(3, 1), 0);
    EXPECT_EQ(systolic::mod4Add(2, 2), 0);
    EXPECT_EQ(systolic::mod4Add(1, 1), 2);
}

TEST(Mod4, OffsetWindow)
{
    // offset(candidate, base) reads the true difference as long as
    // it lies in [0, 3].
    for (unsigned base = 0; base < 4; ++base)
        for (unsigned diff = 0; diff < 4; ++diff)
            EXPECT_EQ(systolic::mod4Offset(
                          systolic::mod4Add(base, diff), base),
                      diff);
}

// ------------------------------------------------------ known scores

TEST(Systolic, PaperExampleScoresTen)
{
    LiptonLoprestiArray array(ScoreMatrix::dnaShortestPathInfMismatch());
    auto r = array.align(dna("GATTCGA"), dna("ACTGAGA"));
    EXPECT_EQ(r.score, 10);
    EXPECT_EQ(r.peCount, 15u); // N + M + 1 = 2N + 1 for N = M = 7
}

TEST(Systolic, IdenticalStrings)
{
    LiptonLoprestiArray array(ScoreMatrix::dnaShortestPathInfMismatch());
    auto r = array.align(dna("ACGTACGT"), dna("ACGTACGT"));
    EXPECT_EQ(r.score, 8);
}

TEST(Systolic, CompleteMismatch)
{
    LiptonLoprestiArray array(ScoreMatrix::dnaShortestPathInfMismatch());
    auto r = array.align(dna("AAAA"), dna("CCCC"));
    EXPECT_EQ(r.score, 8); // all indels
}

TEST(Systolic, SingleCharacters)
{
    LiptonLoprestiArray array(ScoreMatrix::dnaShortestPathInfMismatch());
    EXPECT_EQ(array.align(dna("A"), dna("A")).score, 1);
    EXPECT_EQ(array.align(dna("A"), dna("C")).score, 2);
}

// -------------------------------------------------------- DP oracle

class SystolicVsDp : public ::testing::TestWithParam<int> {};

TEST_P(SystolicVsDp, InfinityMismatchMatrix)
{
    util::Rng rng(8000 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    LiptonLoprestiArray array(m);
    for (int trial = 0; trial < 6; ++trial) {
        size_t n = 1 + rng.index(25);
        size_t k = 1 + rng.index(25);
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), k);
        auto r = array.align(a, b);
        EXPECT_EQ(r.score, bio::globalScore(a, b, m))
            << a.str() << " vs " << b.str();
    }
}

TEST_P(SystolicVsDp, FiniteMismatchMatrix)
{
    util::Rng rng(8800 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    LiptonLoprestiArray array(m);
    for (int trial = 0; trial < 6; ++trial) {
        size_t n = 1 + rng.index(20);
        size_t k = 1 + rng.index(20);
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), k);
        auto r = array.align(a, b);
        EXPECT_EQ(r.score, bio::globalScore(a, b, m))
            << a.str() << " vs " << b.str();
    }
}

TEST_P(SystolicVsDp, UnequalLengthsIncludingExtremes)
{
    util::Rng rng(9600 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    LiptonLoprestiArray array(m);
    size_t n = 1 + rng.index(6);
    size_t k = n + 10 + rng.index(15); // strongly asymmetric
    Sequence a = Sequence::random(rng, Alphabet::dna(), n);
    Sequence b = Sequence::random(rng, Alphabet::dna(), k);
    EXPECT_EQ(array.align(a, b).score, bio::globalScore(a, b, m));
    EXPECT_EQ(array.align(b, a).score, bio::globalScore(b, a, m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystolicVsDp, ::testing::Range(0, 15));

// ----------------------------------------------------------- timing

class SystolicLatency : public ::testing::TestWithParam<size_t> {};

TEST_P(SystolicLatency, MeasuredCyclesMatchClosedForm)
{
    size_t n = GetParam();
    util::Rng rng(42 + n);
    LiptonLoprestiArray array(ScoreMatrix::dnaShortestPathInfMismatch());
    Sequence a = Sequence::random(rng, Alphabet::dna(), n);
    Sequence b = Sequence::random(rng, Alphabet::dna(), n);
    auto r = array.align(a, b);
    EXPECT_EQ(r.cycles, LiptonLoprestiArray::latencyCycles(n, n));
    EXPECT_EQ(r.cycles, 3 * n + 1);
    EXPECT_EQ(r.peClockCycles, r.cycles * (2 * n + 1));
}

INSTANTIATE_TEST_SUITE_P(Lengths, SystolicLatency,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(SystolicLatency, LatencyIsDataIndependent)
{
    // Unlike Race Logic, the systolic array always runs to
    // completion: best and worst case take identical cycles.
    util::Rng rng(77);
    LiptonLoprestiArray array(ScoreMatrix::dnaShortestPathInfMismatch());
    auto [s, w] = bio::worstCasePair(rng, Alphabet::dna(), 16);
    auto best = array.align(s, s);
    auto worst = array.align(s, w);
    EXPECT_EQ(best.cycles, worst.cycles);
}

TEST(SystolicLatency, InitiationInterval)
{
    EXPECT_EQ(LiptonLoprestiArray::initiationInterval(20, 20), 42u);
    EXPECT_EQ(LiptonLoprestiArray::initiationInterval(5, 9), 20u);
}

// ---------------------------------------------------------- activity

TEST(SystolicActivity, EveryPeClockedEveryCycle)
{
    util::Rng rng(78);
    LiptonLoprestiArray array(ScoreMatrix::dnaShortestPathInfMismatch());
    Sequence a = Sequence::random(rng, Alphabet::dna(), 12);
    Sequence b = Sequence::random(rng, Alphabet::dna(), 12);
    auto r = array.align(a, b);
    EXPECT_EQ(r.peClockCycles, r.cycles * r.peCount);
    EXPECT_GT(r.registerBitToggles, 0u);
    EXPECT_GT(r.streamShiftEvents, 0u);
    EXPECT_GT(r.activePeCycles, 0u);
    // Every interior + boundary cell is computed exactly once.
    EXPECT_EQ(r.activePeCycles, 13ull * 13ull);
}

TEST(SystolicActivity, StreamTogglesScaleWithWork)
{
    util::Rng rng(79);
    LiptonLoprestiArray array(ScoreMatrix::dnaShortestPathInfMismatch());
    Sequence a8 = Sequence::random(rng, Alphabet::dna(), 8);
    Sequence b8 = Sequence::random(rng, Alphabet::dna(), 8);
    Sequence a32 = Sequence::random(rng, Alphabet::dna(), 32);
    Sequence b32 = Sequence::random(rng, Alphabet::dna(), 32);
    auto small = array.align(a8, b8);
    auto large = array.align(a32, b32);
    EXPECT_GT(large.streamShiftEvents, small.streamShiftEvents * 4);
}

TEST(SystolicActivity, RegisterBitsPerPe)
{
    // DNA: 2 streams x (2 sym bits + valid) + 2-bit residue = 8.
    EXPECT_EQ(LiptonLoprestiArray::registerBitsPerPe(Alphabet::dna()),
              8u);
    // Protein: 2 x (5 + 1) + 2 = 14.
    EXPECT_EQ(
        LiptonLoprestiArray::registerBitsPerPe(Alphabet::protein()),
        14u);
}

// ----------------------------------------------------- matrix guard

TEST(SystolicDeath, RejectsNonUnitIndels)
{
    ScoreMatrix bad = ScoreMatrix::dnaShortestPath();
    bad.setAllGaps(2);
    EXPECT_DEATH(LiptonLoprestiArray{bad}, "unit indel");
}

TEST(SystolicDeath, RejectsWideMismatchWeights)
{
    ScoreMatrix bad = ScoreMatrix::dnaShortestPath();
    bad.setPairSymmetric(0, 1, 7);
    EXPECT_DEATH(LiptonLoprestiArray{bad}, "mod-4");
}

TEST(SystolicDeath, RejectsSimilarityMatrices)
{
    EXPECT_DEATH(LiptonLoprestiArray{ScoreMatrix::blosum62()},
                 "minimizes");
}

} // namespace
