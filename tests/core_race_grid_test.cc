/**
 * @file
 * Tests for the behavioral race-grid aligner (Fig. 4): equivalence
 * with the DP oracle, the paper's exact propagation table, latency
 * corner formulas, and the wavefront records behind Fig. 6.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "rl/bio/align_dp.h"
#include "rl/core/cancel.h"
#include "rl/core/race_grid.h"
#include "rl/core/wavefront.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::RaceGridAligner;
using core::RaceGridResult;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

// ------------------------------------------------- paper propagation

TEST(RaceGrid, Fig4cPropagationTableReproducedExactly)
{
    // Fig. 4c: "The number inside each cell represents timing, i.e.
    // clock cycle at which signal '1' reached the output of an OR
    // gate of a particular unit cell."  Rows = GATTCGA, cols =
    // ACTGAGA, mismatch = infinity.
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    RaceGridResult r = aligner.align(dna("GATTCGA"), dna("ACTGAGA"));
    const sim::Tick expect[8][8] = {
        {0, 1, 2, 3, 4, 5, 6, 7},
        {1, 2, 3, 4, 4, 5, 6, 7},
        {2, 2, 3, 4, 5, 5, 6, 7},
        {3, 3, 4, 4, 5, 6, 7, 8},
        {4, 4, 5, 5, 6, 7, 8, 9},
        {5, 5, 5, 6, 7, 8, 9, 10},
        {6, 6, 6, 7, 7, 8, 9, 10},
        {7, 7, 7, 8, 8, 8, 9, 10},
    };
    ASSERT_EQ(r.arrival.rows(), 8u);
    ASSERT_EQ(r.arrival.cols(), 8u);
    for (size_t i = 0; i < 8; ++i)
        for (size_t j = 0; j < 8; ++j)
            EXPECT_EQ(r.arrival.at(i, j), expect[i][j])
                << "cell (" << i << "," << j << ")";
    EXPECT_EQ(r.score, 10);
    EXPECT_EQ(r.latencyCycles, 10u);
}

TEST(RaceGrid, ArrivalTableRendering)
{
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    RaceGridResult r = aligner.align(dna("AC"), dna("AC"));
    std::string table = r.arrivalTable();
    EXPECT_EQ(table, "0 1 2\n1 1 2\n2 2 2\n");
}

// ------------------------------------------------------- equivalence

class GridVsDp : public ::testing::TestWithParam<int> {};

TEST_P(GridVsDp, ArrivalTimesEqualDpTableEverywhere)
{
    util::Rng rng(100 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceGridAligner aligner(m);
    size_t n = 1 + rng.index(30);
    size_t k = 1 + rng.index(30);
    Sequence a = Sequence::random(rng, Alphabet::dna(), n);
    Sequence b = Sequence::random(rng, Alphabet::dna(), k);
    RaceGridResult r = aligner.align(a, b);
    auto dp = bio::dpTable(a, b, m);
    for (size_t i = 0; i <= n; ++i)
        for (size_t j = 0; j <= k; ++j)
            EXPECT_EQ(r.arrival.at(i, j),
                      static_cast<sim::Tick>(dp(i, j)))
                << "(" << i << "," << j << ")";
    EXPECT_EQ(r.score, dp(n, k));
}

TEST_P(GridVsDp, Fig2bMatrixAlsoMatches)
{
    // The finite mismatch=2 matrix exercises weight-2 diagonal edges.
    util::Rng rng(200 + GetParam());
    ScoreMatrix m = ScoreMatrix::dnaShortestPath();
    RaceGridAligner aligner(m);
    size_t n = 1 + rng.index(20);
    size_t k = 1 + rng.index(20);
    Sequence a = Sequence::random(rng, Alphabet::dna(), n);
    Sequence b = Sequence::random(rng, Alphabet::dna(), k);
    EXPECT_EQ(aligner.align(a, b).score, bio::globalScore(a, b, m));
}

TEST_P(GridVsDp, BinaryAlphabet)
{
    util::Rng rng(300 + GetParam());
    ScoreMatrix m(Alphabet::binary(), bio::ScoreKind::Cost);
    m.setPair(0, 0, 1);
    m.setPair(1, 1, 1);
    m.setPair(0, 1, bio::kScoreInfinity);
    m.setPair(1, 0, bio::kScoreInfinity);
    m.setAllGaps(1);
    RaceGridAligner aligner(m);
    Sequence a = Sequence::random(rng, Alphabet::binary(),
                                  1 + rng.index(25));
    Sequence b = Sequence::random(rng, Alphabet::binary(),
                                  1 + rng.index(25));
    EXPECT_EQ(aligner.align(a, b).score, bio::globalScore(a, b, m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridVsDp, ::testing::Range(0, 20));

// --------------------------------------------------- latency corners

class LatencyCorners : public ::testing::TestWithParam<size_t> {};

TEST_P(LatencyCorners, BestCaseIsNCycles)
{
    size_t n = GetParam();
    util::Rng rng(17 + n);
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    Sequence s = Sequence::random(rng, Alphabet::dna(), n);
    RaceGridResult r = aligner.align(s, s);
    EXPECT_EQ(r.latencyCycles, n)
        << "identical strings ride the weight-1 diagonal";
}

TEST_P(LatencyCorners, WorstCaseIsTwoNCycles)
{
    size_t n = GetParam();
    util::Rng rng(31 + n);
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    auto [s, w] = bio::worstCasePair(rng, Alphabet::dna(), n);
    RaceGridResult r = aligner.align(s, w);
    EXPECT_EQ(r.latencyCycles, 2 * n)
        << "complete mismatch is all indels";
}

INSTANTIATE_TEST_SUITE_P(Lengths, LatencyCorners,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55));

// ----------------------------------------------------- wavefront maps

TEST(Wavefront, WorstCaseWavefrontIsAntiDiagonal)
{
    // Fig. 6a: under complete mismatch the wavefront at cycle t is
    // exactly the anti-diagonal i + j = t.
    util::Rng rng(77);
    size_t n = 12;
    auto [s, w] = bio::worstCasePair(rng, Alphabet::dna(), n);
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    RaceGridResult r = aligner.align(s, w);
    for (size_t i = 0; i <= n; ++i)
        for (size_t j = 0; j <= n; ++j)
            EXPECT_EQ(r.arrival.at(i, j), i + j);
    EXPECT_EQ(r.wavefrontSize(0), 1u);
    EXPECT_EQ(r.wavefrontSize(n), n + 1);
    EXPECT_EQ(r.wavefrontSize(2 * n), 1u);
}

TEST(Wavefront, BestCaseDiagonalLeadsTheFront)
{
    // Fig. 6b: for identical strings the diagonal cell (t, t) fires
    // at cycle t -- the wavefront's leading point.
    util::Rng rng(78);
    size_t n = 12;
    Sequence s = Sequence::random(rng, Alphabet::dna(), n);
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    RaceGridResult r = aligner.align(s, s);
    for (size_t t = 0; t <= n; ++t)
        EXPECT_EQ(r.arrival.at(t, t), t);
    // Off-diagonal cells fire strictly later than the diagonal cell
    // of their own row/column minimum.
    for (size_t i = 0; i <= n; ++i)
        for (size_t j = 0; j <= n; ++j)
            EXPECT_GE(r.arrival.at(i, j), std::max(i, j));
}

TEST(Wavefront, PictureShadesMatchArrivals)
{
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    RaceGridResult r = aligner.align(dna("AA"), dna("AA"));
    // At cycle 1: (0,0) fired (#), (0,1)/(1,0)/(1,1) firing (o),
    // everything at arrival 2 still dark (.).
    std::string pic = r.wavefrontPicture(1);
    EXPECT_EQ(pic, "#o.\noo.\n...\n");
}

TEST(Wavefront, CellsFiredNeverExceedsGrid)
{
    util::Rng rng(79);
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    Sequence a = Sequence::random(rng, Alphabet::dna(), 9);
    Sequence b = Sequence::random(rng, Alphabet::dna(), 14);
    RaceGridResult r = aligner.align(a, b);
    EXPECT_LE(r.cellsFired, 10u * 15u);
    EXPECT_GT(r.cellsFired, 0u);
    EXPECT_GT(r.events, 0u);
}

// --------------------------------------------------------- monotone

TEST(RaceGrid, ArrivalsAreMonotoneAlongEdges)
{
    // Temporal causality: no cell fires before any of the
    // predecessors that could have triggered it.
    util::Rng rng(80);
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPath());
    Sequence a = Sequence::random(rng, Alphabet::dna(), 15);
    Sequence b = Sequence::random(rng, Alphabet::dna(), 11);
    RaceGridResult r = aligner.align(a, b);
    for (size_t i = 0; i <= 15; ++i) {
        for (size_t j = 0; j <= 11; ++j) {
            if (i > 0) {
                EXPECT_LE(r.arrival.at(i, j),
                          r.arrival.at(i - 1, j) + 1);
            }
            if (j > 0) {
                EXPECT_LE(r.arrival.at(i, j),
                          r.arrival.at(i, j - 1) + 1);
            }
            if (i > 0 && j > 0) {
                EXPECT_GE(r.arrival.at(i, j),
                          r.arrival.at(i - 1, j - 1) + 1);
            }
        }
    }
}

// ------------------------------------------------------- cancellation

TEST(RaceGrid, PreCancelledTokenAbortsWithTypedResult)
{
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPath());
    core::RaceGridScratch scratch;
    core::CancelToken token;
    token.cancel();
    RaceGridResult r =
        aligner.align(dna("GATTACA"), dna("GCATGCT"),
                      sim::kTickInfinity, scratch, &token);
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.cancelled);
    EXPECT_EQ(r.score, bio::kScoreInfinity);
}

TEST(RaceGrid, ExpiredDeadlineTokenCancelsLikeAFlag)
{
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPath());
    core::RaceGridScratch scratch;
    const core::CancelToken token(core::CancelToken::Clock::now() -
                                  std::chrono::milliseconds(1));
    ASSERT_TRUE(token.cancelled());
    RaceGridResult r = aligner.align(dna("ACGT"), dna("AGT"),
                                     sim::kTickInfinity, scratch,
                                     &token);
    EXPECT_TRUE(r.cancelled);
    EXPECT_FALSE(r.completed);
}

TEST(RaceGrid, UncancelledTokenIsBitIdenticalToPlainRace)
{
    // The whole point of pointer-passed tokens: a null token -- and a
    // live one that never fires -- must not perturb the race at all.
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPath());
    const Sequence a = dna("GATTCGAATTG"), b = dna("ACTGAGACCAT");
    const RaceGridResult plain = aligner.align(a, b);

    core::RaceGridScratch scratch;
    const core::CancelToken idle; // never cancelled
    for (const core::CancelToken *token :
         {static_cast<const core::CancelToken *>(nullptr), &idle}) {
        RaceGridResult r =
            aligner.align(a, b, sim::kTickInfinity, scratch, token);
        EXPECT_FALSE(r.cancelled);
        EXPECT_EQ(r.score, plain.score);
        EXPECT_EQ(r.latencyCycles, plain.latencyCycles);
        EXPECT_EQ(r.events, plain.events);
        EXPECT_EQ(r.cellsFired, plain.cellsFired);
        ASSERT_EQ(r.arrival.rows(), plain.arrival.rows());
        for (size_t i = 0; i < r.arrival.rows(); ++i)
            for (size_t j = 0; j < r.arrival.cols(); ++j)
                EXPECT_EQ(r.arrival.at(i, j), plain.arrival.at(i, j));
    }
}

TEST(RaceGridDeath, SimilarityMatrixRejected)
{
    EXPECT_DEATH(RaceGridAligner(ScoreMatrix::blosum62()),
                 "Cost matrix");
}

TEST(RaceGridDeath, ZeroWeightsRejected)
{
    EXPECT_DEATH(RaceGridAligner(
                     ScoreMatrix::unitEdit(Alphabet::dna())),
                 ">= 1");
}

} // namespace
