/**
 * @file
 * Direct tests for core::tracebackFromRace driven from
 * wavefront-kernel arrival grids (previously exercised only
 * indirectly through examples).  The firing-time table of a race is
 * a valid DP table, so walking tight edges must reproduce
 * bio::globalAlign exactly -- same score, same path, same rendered
 * rows, thanks to the shared diagonal/vertical/horizontal
 * tie-breaking.  The pangraph CIGAR reconstruction
 * (rl/pangraph/mapping.h) reuses the same tight-edge principle; this
 * suite anchors the grid half.
 */

#include <gtest/gtest.h>

#include "rl/bio/align_dp.h"
#include "rl/core/race_grid.h"
#include "rl/core/traceback.h"
#include "rl/core/wavefront.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

void
expectSameAlignment(const bio::Alignment &raced,
                    const bio::Alignment &oracle)
{
    EXPECT_EQ(raced.score, oracle.score);
    EXPECT_EQ(raced.path, oracle.path);
    EXPECT_EQ(raced.alignedA, oracle.alignedA);
    EXPECT_EQ(raced.alignedB, oracle.alignedB);
    EXPECT_EQ(raced.matches, oracle.matches);
    EXPECT_EQ(raced.mismatches, oracle.mismatches);
    EXPECT_EQ(raced.indels, oracle.indels);
}

TEST(CoreTraceback, PaperExamplePair)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    Sequence p(Alphabet::dna(), "ACTGAGA");
    Sequence q(Alphabet::dna(), "GATTCGA");
    core::RaceGridAligner aligner(costs);
    core::RaceGridResult raced = aligner.align(p, q);
    bio::Alignment alignment =
        core::tracebackFromRace(raced, p, q, costs);
    expectSameAlignment(alignment, bio::globalAlign(p, q, costs));
    EXPECT_TRUE(
        bio::checkAlignment(p, q, costs, alignment).empty());
}

TEST(CoreTraceback, MatchesGlobalAlignOnRandomPairs)
{
    util::Rng rng(314);
    const ScoreMatrix matrices[] = {
        ScoreMatrix::dnaShortestPath(),
        ScoreMatrix::dnaShortestPathInfMismatch(),
        ScoreMatrix::uniform(Alphabet::dna(), bio::ScoreKind::Cost, 3),
    };
    for (const ScoreMatrix &costs : matrices) {
        core::RaceGridAligner aligner(costs);
        for (int round = 0; round < 10; ++round) {
            Sequence a = Sequence::random(
                rng, Alphabet::dna(),
                static_cast<size_t>(rng.uniformInt(0, 24)));
            Sequence b = Sequence::random(
                rng, Alphabet::dna(),
                static_cast<size_t>(rng.uniformInt(0, 24)));
            core::RaceGridResult raced = aligner.align(a, b);
            bio::Alignment alignment =
                core::tracebackFromRace(raced, a, b, costs);
            expectSameAlignment(alignment,
                                bio::globalAlign(a, b, costs));
            EXPECT_TRUE(
                bio::checkAlignment(a, b, costs, alignment).empty());
        }
    }
}

TEST(CoreTraceback, WorksFromScratchReuseKernelRuns)
{
    // The batch-screening loop reuses one RaceGridScratch per
    // thread; arrival grids out of that path must trace back too.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    core::RaceGridAligner aligner(costs);
    core::RaceGridScratch scratch;
    util::Rng rng(9);
    for (int round = 0; round < 6; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 12);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 15);
        core::RaceGridResult raced =
            aligner.align(a, b, sim::kTickInfinity, scratch);
        bio::Alignment alignment =
            core::tracebackFromRace(raced, a, b, costs);
        expectSameAlignment(alignment, bio::globalAlign(a, b, costs));
    }
}

TEST(CoreTraceback, WorksOnHorizonTruncatedCompletedRace)
{
    // A horizon equal to the exact score truncates the arrival grid
    // past the sink, but every cell on an optimal path fired at or
    // before the sink, so the traceback still walks clean.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    Sequence a(Alphabet::dna(), "ACTGACTG");
    Sequence b(Alphabet::dna(), "ACGGACG");
    core::RaceGridAligner aligner(costs);
    bio::Score exact = bio::globalScore(a, b, costs);
    core::RaceGridResult raced =
        aligner.align(a, b, static_cast<sim::Tick>(exact));
    ASSERT_TRUE(raced.completed);
    bio::Alignment alignment =
        core::tracebackFromRace(raced, a, b, costs);
    expectSameAlignment(alignment, bio::globalAlign(a, b, costs));
}

TEST(CoreTraceback, AllIndelWorstCasePair)
{
    // Complete-mismatch pairs under the missing-diagonal matrix:
    // the only walk is pure indels.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    util::Rng rng(41);
    auto [a, b] = bio::worstCasePair(rng, Alphabet::dna(), 9);
    core::RaceGridAligner aligner(costs);
    core::RaceGridResult raced = aligner.align(a, b);
    bio::Alignment alignment =
        core::tracebackFromRace(raced, a, b, costs);
    EXPECT_EQ(alignment.matches, 0u);
    EXPECT_EQ(alignment.mismatches, 0u);
    EXPECT_EQ(alignment.indels, a.size() + b.size());
    EXPECT_EQ(alignment.score,
              static_cast<bio::Score>(a.size() + b.size()));
}

} // namespace
