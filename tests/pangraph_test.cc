/**
 * @file
 * Tests for the rl/pangraph subsystem: GFA parsing and its rejection
 * paths, the product-DAG race against the graph-NW oracle (exact,
 * cell-by-cell, and on randomized variation graphs), traceback to
 * (walk, CIGAR) mappings that re-score to the raced distance, the
 * Section 5 similarity conversion on rank-balanced graphs, and the
 * Section 6 early-termination horizon.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <sstream>

#include "rl/bio/align_dp.h"
#include "rl/core/cancel.h"
#include "rl/core/wavefront.h"
#include "rl/pangraph/generate.h"
#include "rl/pangraph/gfa.h"
#include "rl/pangraph/graph_align_dp.h"
#include "rl/pangraph/graph_aligner.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using pangraph::GraphAligner;
using pangraph::GraphMapping;
using pangraph::SegmentId;
using pangraph::VariationGraph;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

/** The bundled sample: a SNP bubble plus an insertion bubble. */
const char *kSampleGfa =
    "H\tVN:Z:1.0\n"
    "S\ts1\tACTGA\n"
    "S\ts2\tG\n"
    "S\ts3\tT\n"
    "S\ts4\tAC\n"
    "S\ts5\tGT\n"
    "S\ts6\tTAGA\n"
    "L\ts1\t+\ts2\t+\t0M\n"
    "L\ts1\t+\ts3\t+\t0M\n"
    "L\ts2\t+\ts4\t+\t0M\n"
    "L\ts3\t+\ts4\t+\t0M\n"
    "L\ts4\t+\ts5\t+\t0M\n"
    "L\ts4\t+\ts6\t+\t0M\n"
    "L\ts5\t+\ts6\t+\t0M\n";

std::shared_ptr<const VariationGraph>
sampleGraph()
{
    std::istringstream in(kSampleGfa);
    return std::make_shared<VariationGraph>(
        pangraph::readGfa(in, Alphabet::dna()));
}

/** Spell every source-to-sink walk (small graphs only). */
void
spellWalks(const VariationGraph &graph, SegmentId at, std::string prefix,
           std::vector<std::string> &out)
{
    prefix += graph.segment(at).label.str();
    if (graph.outLinks(at).empty()) {
        out.push_back(prefix);
        return;
    }
    for (SegmentId next : graph.outLinks(at))
        spellWalks(graph, next, prefix, out);
}

std::vector<std::string>
allWalks(const VariationGraph &graph)
{
    std::vector<std::string> walks;
    for (SegmentId s : graph.sources())
        spellWalks(graph, s, "", walks);
    return walks;
}

TEST(Gfa, ParsesSampleGraph)
{
    auto graph = sampleGraph();
    EXPECT_EQ(graph->segmentCount(), 6u);
    EXPECT_EQ(graph->linkCount(), 7u);
    EXPECT_EQ(graph->totalLabelLength(), 15u);
    EXPECT_EQ(graph->sources(), std::vector<SegmentId>{0});
    EXPECT_EQ(graph->sinks(), std::vector<SegmentId>{5});
    EXPECT_EQ(graph->segment(graph->findSegment("s6")).label.str(),
              "TAGA");

    // Deterministic Kahn order; sources first, every link forward.
    auto order = graph->topologicalOrder();
    ASSERT_EQ(order.size(), 6u);
    std::vector<size_t> rank(order.size());
    for (size_t i = 0; i < order.size(); ++i)
        rank[order[i]] = i;
    for (SegmentId id = 0; id < graph->segmentCount(); ++id)
        for (SegmentId to : graph->outLinks(id))
            EXPECT_LT(rank[id], rank[to]);

    // Shortest walk skips s5 (5+1+2+4), longest takes it (+2).
    auto range = graph->spelledLengthRange();
    EXPECT_EQ(range.first, 12u);
    EXPECT_EQ(range.second, 14u);
}

TEST(Gfa, ToleratesCrlfLowercaseAndComments)
{
    std::istringstream in(
        "# produced by a windows tool\r\n"
        "H\tVN:Z:1.0\r\n"
        "S\ta\tacgt\r\n"
        "S\tb\tTT\r\n"
        "\r\n"
        "L\ta\t+\tb\t+\t*\r\n");
    VariationGraph graph = pangraph::readGfa(in, Alphabet::dna());
    EXPECT_EQ(graph.segmentCount(), 2u);
    EXPECT_EQ(graph.segment(0).label.str(), "ACGT");
    EXPECT_EQ(graph.outLinks(0), std::vector<SegmentId>{1});
}

TEST(Gfa, RejectsReverseStrandLinksTyped)
{
    std::istringstream in("S\ta\tAC\nS\tb\tGT\nL\ta\t+\tb\t-\t0M\n");
    auto graph = pangraph::tryReadGfa(in, Alphabet::dna());
    ASSERT_FALSE(graph.ok());
    EXPECT_EQ(graph.status().code(), ErrorCode::Unsupported);
    EXPECT_NE(graph.status().message().find("reverse-strand"),
              std::string::npos);
}

TEST(Gfa, RejectsCyclicGraphTyped)
{
    std::istringstream in(
        "S\ta\tAC\nS\tb\tGT\n"
        "L\ta\t+\tb\t+\t0M\nL\tb\t+\ta\t+\t0M\n");
    auto graph = pangraph::tryReadGfa(in, Alphabet::dna());
    ASSERT_FALSE(graph.ok());
    EXPECT_EQ(graph.status().code(), ErrorCode::Unsupported);
    EXPECT_NE(graph.status().message().find("cycle"),
              std::string::npos);
}

TEST(Gfa, RejectsUndeclaredSegmentAndMissingSequenceTyped)
{
    std::istringstream missing("S\ta\tAC\nL\ta\t+\tzz\t+\t0M\n");
    auto noSeg = pangraph::tryReadGfa(missing, Alphabet::dna());
    ASSERT_FALSE(noSeg.ok());
    EXPECT_EQ(noSeg.status().code(), ErrorCode::NotFound);
    EXPECT_NE(noSeg.status().message().find("undeclared"),
              std::string::npos);

    std::istringstream star("S\ta\t*\n");
    auto noSeq = pangraph::tryReadGfa(star, Alphabet::dna());
    ASSERT_FALSE(noSeq.ok());
    EXPECT_EQ(noSeq.status().code(), ErrorCode::Unsupported);
    EXPECT_NE(noSeq.status().message().find("no sequence"),
              std::string::npos);
}

TEST(Gfa, RejectsNonBluntOverlapTyped)
{
    std::istringstream in("S\ta\tAC\nS\tb\tGT\nL\ta\t+\tb\t+\t3M\n");
    auto graph = pangraph::tryReadGfa(in, Alphabet::dna());
    ASSERT_FALSE(graph.ok());
    EXPECT_EQ(graph.status().code(), ErrorCode::Unsupported);
    EXPECT_NE(graph.status().message().find("blunt"),
              std::string::npos);
}

TEST(GfaDeath, FatalWrapperExitsWithDiagnostic)
{
    // readGfa() stays a valueOrFatal() shim over tryReadGfa() for
    // CLI tools; one death test pins the wrapper's contract.
    std::istringstream in("S\ta\tAC\nS\tb\tGT\nL\ta\t+\tb\t-\t0M\n");
    EXPECT_EXIT(pangraph::readGfa(in, Alphabet::dna()),
                ::testing::ExitedWithCode(1), "reverse-strand");
}

TEST(Gfa, RoundTripThroughWriter)
{
    auto graph = sampleGraph();
    std::ostringstream out;
    pangraph::writeGfa(out, *graph);
    std::istringstream in(out.str());
    VariationGraph parsed = pangraph::readGfa(in, Alphabet::dna());
    EXPECT_TRUE(pangraph::sameTopology(*graph, parsed));
    EXPECT_EQ(graph->fingerprint(), parsed.fingerprint());
}

TEST(GraphAlign, SingleSegmentGraphEqualsPairwiseAlignment)
{
    // A one-segment graph is plain pairwise alignment; the graph
    // oracle and the race must both match the classic DP.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    auto graph = std::make_shared<VariationGraph>(Alphabet::dna());
    graph->addSegment("ref", dna("ACTGAGA"));

    util::Rng rng(11);
    GraphAligner aligner(graph, costs);
    for (int round = 0; round < 8; ++round) {
        Sequence read =
            Sequence::random(rng, Alphabet::dna(),
                             static_cast<size_t>(rng.uniformInt(0, 10)));
        bio::Score expected =
            bio::globalScore(read, dna("ACTGAGA"), costs);
        EXPECT_EQ(pangraph::graphAlignDp(*graph, read, costs).distance,
                  expected);
        EXPECT_EQ(aligner.align(read).score, expected);
    }
}

TEST(GraphAlign, RaceEqualsOracleAndBestWalkOnSample)
{
    auto graph = sampleGraph();
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    GraphAligner aligner(graph, costs);
    std::vector<std::string> walks = allWalks(*graph);
    ASSERT_EQ(walks.size(), 4u); // 2 SNP branches x (with|without s5)

    util::Rng rng(23);
    std::vector<Sequence> reads = {
        dna("ACTGAGACTAGA"),   // exact shortest walk
        dna("ACTGATACGTTAGA"), // exact longest walk (via s3, s5)
        dna("ACTGA"), dna(""), dna("TTTTTTTTTTTT"),
    };
    for (int i = 0; i < 6; ++i)
        reads.push_back(Sequence::random(
            rng, Alphabet::dna(),
            static_cast<size_t>(rng.uniformInt(1, 16))));

    for (const Sequence &read : reads) {
        // Gold standard: the best pairwise alignment over every
        // spelled walk.
        bio::Score best = bio::kScoreInfinity;
        for (const std::string &walk : walks)
            best = std::min(best,
                            bio::globalScore(read, dna(walk), costs));
        pangraph::GraphDpResult oracle =
            pangraph::graphAlignDp(*graph, read, costs);
        EXPECT_EQ(oracle.distance, best);

        pangraph::GraphRaceResult raced = aligner.align(read);
        EXPECT_TRUE(raced.completed);
        EXPECT_EQ(raced.score, best);
        EXPECT_EQ(raced.latencyCycles,
                  static_cast<sim::Tick>(best));

        // The race arrival at product node (j, p) must equal the
        // oracle DP cell (p, j) -- same shortest-path problem.
        const size_t positions = oracle.table.rows();
        for (size_t p = 0; p < positions; ++p) {
            for (size_t j = 0; j <= read.size(); ++j) {
                const auto &arrival =
                    raced.arrival[j * positions + p];
                const bio::Score cell = oracle.table.at(p, j);
                if (arrival.fired())
                    EXPECT_EQ(static_cast<bio::Score>(arrival.time()),
                              cell);
                else
                    EXPECT_EQ(cell, bio::kScoreInfinity);
            }
        }
    }
}

TEST(GraphAlign, ExactWalkReadMapsAllMatches)
{
    auto graph = sampleGraph();
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    GraphAligner aligner(graph, costs);

    // Spell s1 -> s2 -> s4 -> s6 exactly: ACTGA G AC TAGA.
    Sequence read = dna("ACTGAGACTAGA");
    GraphMapping mapping = aligner.map(read);
    EXPECT_EQ(mapping.cigar, "12=");
    EXPECT_EQ(mapping.distance,
              static_cast<bio::Score>(read.size())); // match weight 1
    std::vector<SegmentId> expected = {
        graph->findSegment("s1"), graph->findSegment("s2"),
        graph->findSegment("s4"), graph->findSegment("s6")};
    EXPECT_EQ(mapping.path, expected);
    EXPECT_EQ(pangraph::rescoreMapping(*graph, read, costs, mapping),
              mapping.distance);
}

TEST(GraphAlign, RandomizedRaceOracleAndTracebackAgreement)
{
    // Randomized GFAs with SNP bubbles, indel branches, and node
    // labels from 1 nt up to 64 nt; reads sampled from walks with
    // mutation noise.  The raced distance must equal the oracle and
    // every traceback must re-score to it.
    util::Rng rng(1234);
    const ScoreMatrix matrices[] = {
        ScoreMatrix::dnaShortestPath(),
        ScoreMatrix::dnaShortestPathInfMismatch(),
    };
    for (int round = 0; round < 12; ++round) {
        pangraph::VariationGraphParams params;
        params.backboneSegments =
            static_cast<size_t>(rng.uniformInt(2, 6));
        params.minLabel = 1;
        params.maxLabel = round < 10 ? 8 : 64; // two big-node rounds
        params.snpDensity = 0.4;
        params.insertDensity = 0.25;
        params.deleteDensity = 0.25;
        auto graph = std::make_shared<VariationGraph>(
            pangraph::randomVariationGraph(rng, Alphabet::dna(),
                                           params));
        graph->validate();

        const ScoreMatrix &costs = matrices[round % 2];
        GraphAligner aligner(graph, costs);
        for (int r = 0; r < 4; ++r) {
            Sequence read = pangraph::sampleRead(
                rng, *graph, bio::MutationModel::uniform(0.2));
            pangraph::GraphDpResult oracle =
                pangraph::graphAlignDp(*graph, read, costs);
            pangraph::GraphRaceResult raced = aligner.align(read);
            ASSERT_TRUE(raced.completed);
            ASSERT_EQ(raced.score, oracle.distance)
                << "round " << round << " read " << read.str();

            GraphMapping mapping = aligner.map(read);
            EXPECT_EQ(mapping.distance, raced.score);
            EXPECT_EQ(mapping.readConsumed, read.size());
            EXPECT_EQ(
                pangraph::rescoreMapping(*graph, read, costs, mapping),
                mapping.distance);
        }
    }
}

TEST(GraphAlign, SimilarityMatrixOnBalancedGraph)
{
    // SNP-only graphs are rank-balanced, so the Section 5 conversion
    // preserves the optimum across walks and the recovered score
    // must equal the best similarity over all spelled walks.
    util::Rng rng(77);
    auto graph = std::make_shared<VariationGraph>(
        pangraph::randomVariationGraph(
            rng, Alphabet::dna(),
            pangraph::VariationGraphParams::balanced(5)));
    ScoreMatrix similarity = ScoreMatrix::dnaLongestPath();
    GraphAligner aligner(graph, similarity);
    ASSERT_TRUE(aligner.conversion().has_value());

    std::vector<std::string> walks = allWalks(*graph);
    for (int r = 0; r < 6; ++r) {
        Sequence read = pangraph::sampleRead(
            rng, *graph, bio::MutationModel::uniform(0.25));
        bio::Score best = -bio::kScoreInfinity;
        for (const std::string &walk : walks)
            best = std::max(
                best, bio::globalScore(read, dna(walk), similarity));
        EXPECT_EQ(aligner.align(read).score, best);
    }
}

TEST(GraphAlign, SimilarityNeedsRankBalanceTyped)
{
    // The sample graph's insertion bubble unbalances walk lengths.
    auto graph = sampleGraph();
    auto aligner =
        GraphAligner::tryMake(graph, ScoreMatrix::dnaLongestPath());
    ASSERT_FALSE(aligner.ok());
    EXPECT_EQ(aligner.status().code(), ErrorCode::Unsupported);
    EXPECT_NE(aligner.status().message().find("rank-balanced"),
              std::string::npos);
}

TEST(GraphAlign, HorizonAbortMatchesFullRaceVerdict)
{
    auto graph = sampleGraph();
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    GraphAligner aligner(graph, costs);
    util::Rng rng(5);
    for (int r = 0; r < 10; ++r) {
        Sequence read = pangraph::sampleRead(
            rng, *graph, bio::MutationModel::uniform(0.3));
        pangraph::GraphRaceResult full = aligner.align(read);
        const sim::Tick threshold =
            static_cast<sim::Tick>(rng.uniformInt(0, 20));
        pangraph::GraphRaceResult bounded =
            aligner.align(read, threshold);
        if (full.racedCost <= static_cast<bio::Score>(threshold)) {
            EXPECT_TRUE(bounded.completed);
            EXPECT_EQ(bounded.racedCost, full.racedCost);
        } else {
            EXPECT_FALSE(bounded.completed);
            EXPECT_EQ(bounded.score, bio::kScoreInfinity);
            EXPECT_EQ(bounded.latencyCycles, threshold);
        }
    }
}

TEST(GraphAlign, RejectsUnraceableWeightsAtPlanTimeTyped)
{
    // Bad matrices must fail in the GraphAligner factory with a
    // typed diagnostic, not deep inside the wavefront kernel.
    auto graph = sampleGraph();
    ScoreMatrix infGap = ScoreMatrix::dnaShortestPath();
    infGap.setGap(Alphabet::dna().encode('A'), bio::kScoreInfinity);
    auto inf = GraphAligner::tryMake(graph, infGap);
    ASSERT_FALSE(inf.ok());
    EXPECT_EQ(inf.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(inf.status().message().find("infinite"),
              std::string::npos);

    ScoreMatrix huge = ScoreMatrix::uniform(
        Alphabet::dna(), bio::ScoreKind::Cost,
        core::kMaxWavefrontWeight + 1);
    auto overCap = GraphAligner::tryMake(graph, huge);
    ASSERT_FALSE(overCap.ok());
    EXPECT_EQ(overCap.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(overCap.status().message().find("race-ready range"),
              std::string::npos);
}

TEST(GraphAlign, VariationGraphRejectsBadSegmentsTyped)
{
    VariationGraph graph{Alphabet::dna()};
    graph.addSegment("a", dna("AC"));
    auto dup = graph.tryAddSegment("a", dna("GT"));
    ASSERT_FALSE(dup.ok());
    EXPECT_EQ(dup.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(dup.status().message().find("duplicate"),
              std::string::npos);
    auto empty = graph.tryAddSegment("b", dna(""));
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(empty.status().message().find("empty"),
              std::string::npos);
    // A rejected segment leaves the graph untouched.
    EXPECT_EQ(graph.segmentCount(), 1u);
}

TEST(GraphAlign, CompileGraphValidatesWeightsForDirectCallersTyped)
{
    // tryCompileGraph() is public; its own plan-time validation must
    // catch matrices GraphAligner would reject, so a direct caller
    // gets a typed diagnostic instead of the fused kernel sizing its
    // ring from kScoreInfinity.
    auto graph = sampleGraph();
    ScoreMatrix infGap = ScoreMatrix::dnaShortestPath();
    infGap.setGap(Alphabet::dna().encode('A'), bio::kScoreInfinity);
    auto inf = pangraph::tryCompileGraph(*graph, infGap);
    ASSERT_FALSE(inf.ok());
    EXPECT_EQ(inf.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(inf.status().message().find("infinite"),
              std::string::npos);

    ScoreMatrix huge = ScoreMatrix::uniform(
        Alphabet::dna(), bio::ScoreKind::Cost,
        core::kMaxWavefrontWeight + 1);
    auto overCap = pangraph::tryCompileGraph(*graph, huge);
    ASSERT_FALSE(overCap.ok());
    EXPECT_EQ(overCap.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(overCap.status().message().find("race-ready range"),
              std::string::npos);
}

TEST(GraphAlignDeath, RejectsMatrixMismatchedWithCompiledView)
{
    // The compiled view hoists gap weights from one matrix; handing
    // either product builder a different matrix must die (a foreign
    // matrix could even size the fused kernel's calendar ring below
    // a hoisted weight).
    auto graph = sampleGraph();
    GraphAligner aligner(graph, ScoreMatrix::dnaShortestPath());
    ScoreMatrix other = ScoreMatrix::uniform(
        Alphabet::dna(), bio::ScoreKind::Cost, 3);
    EXPECT_EXIT(pangraph::raceAlignmentGrid(aligner.compiled(),
                                            dna("AC"), other),
                ::testing::KilledBySignal(SIGABRT), "compiled");
    EXPECT_EXIT(pangraph::buildAlignmentGraph(aligner.compiled(),
                                              dna("AC"), other),
                ::testing::KilledBySignal(SIGABRT), "compiled");
}

/**
 * Race `read` on the materialized product DAG (the reference path)
 * and on the fused kernel, and assert the outcomes are bit-identical:
 * every result field including the event count, and the arrival
 * vector element by element (super-sink included).
 */
void
expectFusedMatchesMaterialized(const GraphAligner &aligner,
                               const Sequence &read, sim::Tick horizon)
{
    pangraph::GraphRaceResult reference = aligner.align(
        pangraph::buildAlignmentGraph(aligner.compiled(), read,
                                      aligner.costs()),
        horizon);
    pangraph::GraphRaceResult fused = aligner.align(read, horizon);

    EXPECT_EQ(fused.completed, reference.completed);
    EXPECT_EQ(fused.racedCost, reference.racedCost);
    EXPECT_EQ(fused.score, reference.score);
    EXPECT_EQ(fused.latencyCycles, reference.latencyCycles);
    EXPECT_EQ(fused.events, reference.events);
    EXPECT_EQ(fused.nodes, reference.nodes);
    EXPECT_EQ(fused.cellsFired, reference.cellsFired);
    ASSERT_EQ(fused.arrival.size(), reference.arrival.size());
    for (size_t n = 0; n < fused.arrival.size(); ++n)
        ASSERT_EQ(fused.arrival[n].rawTime(),
                  reference.arrival[n].rawTime())
            << "arrival diverges at product node " << n << " (read "
            << read.str() << ", horizon " << horizon << ")";
}

TEST(GraphAlignFused, BitIdenticalToMaterializedDagOnRandomGraphs)
{
    // The fused kernel generates product edges on the fly; racing the
    // materialized DAG on the general CSR kernel is the reference.
    // Randomized graphs (SNP bubbles, indel branches, 1..64 nt
    // labels), both factory cost matrices, reads with mutation noise,
    // full races and random Section 6 horizons.
    util::Rng rng(4242);
    const ScoreMatrix matrices[] = {
        ScoreMatrix::dnaShortestPath(),
        ScoreMatrix::dnaShortestPathInfMismatch(),
    };
    for (int round = 0; round < 10; ++round) {
        pangraph::VariationGraphParams params;
        params.backboneSegments =
            static_cast<size_t>(rng.uniformInt(2, 6));
        params.minLabel = 1;
        params.maxLabel = round < 8 ? 8 : 64; // two big-node rounds
        params.snpDensity = 0.4;
        params.insertDensity = 0.25;
        params.deleteDensity = 0.25;
        auto graph = std::make_shared<VariationGraph>(
            pangraph::randomVariationGraph(rng, Alphabet::dna(),
                                           params));
        GraphAligner aligner(graph, matrices[round % 2]);
        for (int r = 0; r < 3; ++r) {
            Sequence read = pangraph::sampleRead(
                rng, *graph, bio::MutationModel::uniform(0.25));
            expectFusedMatchesMaterialized(aligner, read,
                                           sim::kTickInfinity);
            expectFusedMatchesMaterialized(
                aligner, read,
                static_cast<sim::Tick>(rng.uniformInt(0, 30)));
        }
    }
}

TEST(GraphAlignFused, SimilarityPlanRecoversThroughFusedPath)
{
    // Converted (Section 5) plans race the fused kernel too; the
    // recovered similarity must match the materialized reference.
    util::Rng rng(99);
    auto graph = std::make_shared<VariationGraph>(
        pangraph::randomVariationGraph(
            rng, Alphabet::dna(),
            pangraph::VariationGraphParams::balanced(4)));
    GraphAligner aligner(graph, ScoreMatrix::dnaLongestPath());
    for (int r = 0; r < 4; ++r) {
        Sequence read = pangraph::sampleRead(
            rng, *graph, bio::MutationModel::uniform(0.2));
        expectFusedMatchesMaterialized(aligner, read,
                                       sim::kTickInfinity);
    }
}

TEST(GraphAlignFused, EdgeCasesMatchReference)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();

    // Empty read on the bundled bubble graph: pure deletion sweep.
    GraphAligner bubbles(sampleGraph(), costs);
    expectFusedMatchesMaterialized(bubbles, dna(""),
                                   sim::kTickInfinity);
    expectFusedMatchesMaterialized(bubbles, dna(""), 3);

    // Graph of one segment (single source = sink, one terminal).
    auto single = std::make_shared<VariationGraph>(Alphabet::dna());
    single->addSegment("only", dna("ACGTAC"));
    GraphAligner aligner(single, costs);
    for (const char *text : {"", "A", "ACGTAC", "TTTT"}) {
        expectFusedMatchesMaterialized(aligner, dna(text),
                                       sim::kTickInfinity);
        expectFusedMatchesMaterialized(aligner, dna(text), 0);
        expectFusedMatchesMaterialized(aligner, dna(text), 2);
    }

    // Horizon exactly at the raced distance must still complete.
    pangraph::GraphRaceResult full = aligner.align(dna("ACGAC"));
    ASSERT_TRUE(full.completed);
    expectFusedMatchesMaterialized(
        aligner, dna("ACGAC"),
        static_cast<sim::Tick>(full.racedCost));
    if (full.racedCost > 0)
        expectFusedMatchesMaterialized(
            aligner, dna("ACGAC"),
            static_cast<sim::Tick>(full.racedCost) - 1);
}

TEST(GraphAlignFused, PreCancelledTokenAbortsWithTypedResult)
{
    GraphAligner aligner(sampleGraph(), ScoreMatrix::dnaShortestPath());
    core::CancelToken token;
    token.cancel();
    pangraph::GraphRaceResult r =
        aligner.align(dna("ACGAC"), sim::kTickInfinity, &token);
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.cancelled);
    EXPECT_EQ(r.score, bio::kScoreInfinity);
}

TEST(GraphAlignFused, UncancelledTokenIsBitIdenticalToPlainAlign)
{
    GraphAligner aligner(sampleGraph(), ScoreMatrix::dnaShortestPath());
    const Sequence read = dna("ACGTAC");
    const pangraph::GraphRaceResult plain = aligner.align(read);

    const core::CancelToken idle; // never cancelled
    pangraph::GraphRaceResult r =
        aligner.align(read, sim::kTickInfinity, &idle);
    EXPECT_FALSE(r.cancelled);
    EXPECT_EQ(r.score, plain.score);
    EXPECT_EQ(r.racedCost, plain.racedCost);
    EXPECT_EQ(r.events, plain.events);
    EXPECT_EQ(r.cellsFired, plain.cellsFired);
    ASSERT_EQ(r.arrival.size(), plain.arrival.size());
    for (size_t n = 0; n < r.arrival.size(); ++n)
        EXPECT_EQ(r.arrival[n].rawTime(), plain.arrival[n].rawTime());
}

TEST(GraphAlignFused, ScratchReuseIsBitIdenticalAndBuildsNoProduct)
{
    // The steady-state read-mapping shape: one scratch across many
    // reads.  Outcomes must equal fresh-scratch runs, and the fused
    // path must not materialize any product DAG.
    auto graph = sampleGraph();
    GraphAligner aligner(graph, ScoreMatrix::dnaShortestPath());
    util::Rng rng(7);
    std::vector<Sequence> reads;
    for (int r = 0; r < 12; ++r)
        reads.push_back(pangraph::sampleRead(
            rng, *graph, bio::MutationModel::uniform(0.3)));

    const uint64_t builds = pangraph::alignmentGraphBuildCount();
    pangraph::GraphAlignScratch scratch;
    for (const Sequence &read : reads) {
        pangraph::GraphRaceResult reused =
            aligner.align(read, sim::kTickInfinity, scratch);
        pangraph::GraphRaceResult fresh = aligner.align(read);
        EXPECT_EQ(reused.racedCost, fresh.racedCost);
        EXPECT_EQ(reused.events, fresh.events);
        EXPECT_EQ(reused.cellsFired, fresh.cellsFired);
        ASSERT_EQ(reused.arrival.size(), fresh.arrival.size());
        for (size_t n = 0; n < reused.arrival.size(); ++n)
            EXPECT_EQ(reused.arrival[n].rawTime(),
                      fresh.arrival[n].rawTime());
    }
    EXPECT_EQ(pangraph::alignmentGraphBuildCount(), builds);

    // Tracebacks from fused arrivals re-score exactly (map() races
    // fused and walks tight edges on the same vector).
    for (const Sequence &read : reads) {
        GraphMapping mapping = aligner.map(read);
        EXPECT_EQ(
            pangraph::rescoreMapping(*graph, read, aligner.costs(),
                                     mapping),
            mapping.distance);
    }
}

} // namespace
