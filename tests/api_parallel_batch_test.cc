/**
 * @file
 * Parallel batch screening through api::RaceEngine: a solveBatch run
 * on the thread pool must return results bit-identical to a serial
 * run -- every field, arrival grids included -- in input order, with
 * the same fabric-pool schedule; and the early-termination config
 * knob must change cycle accounting without changing any verdict.
 */

#include <gtest/gtest.h>

#include "rl/api/api.h"
#include "rl/bio/align_dp.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using api::BatchOutcome;
using api::RaceEngine;
using api::RaceProblem;
using api::RaceResult;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

api::EngineConfig
withThreads(size_t threads)
{
    api::EngineConfig config;
    config.workerThreads = threads;
    return config;
}

void
expectIdenticalResults(const RaceResult &got, const RaceResult &want)
{
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.backend, want.backend);
    EXPECT_EQ(got.score, want.score);
    EXPECT_EQ(got.racedCost, want.racedCost);
    EXPECT_EQ(got.latencyCycles, want.latencyCycles);
    EXPECT_EQ(got.events, want.events);
    EXPECT_EQ(got.completed, want.completed);
    EXPECT_EQ(got.accepted, want.accepted);
    EXPECT_EQ(got.cyclesUsed, want.cyclesUsed);
    EXPECT_TRUE(got.arrival == want.arrival);
    EXPECT_EQ(got.nodes, want.nodes);
    EXPECT_EQ(got.cellsFired, want.cellsFired);
    ASSERT_EQ(got.estimate.has_value(), want.estimate.has_value());
    if (got.estimate) {
        EXPECT_DOUBLE_EQ(got.estimate->wallTimeNs,
                         want.estimate->wallTimeNs);
        EXPECT_DOUBLE_EQ(got.estimate->areaUm2, want.estimate->areaUm2);
        EXPECT_DOUBLE_EQ(got.estimate->energyJ, want.estimate->energyJ);
    }
}

std::vector<RaceProblem>
screeningBatch(uint64_t seed, size_t entries, bio::Score threshold)
{
    util::Rng rng(seed);
    auto wl = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), 20, entries, 0.3,
        bio::MutationModel{0.06, 0.03, 0.03});
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    std::vector<RaceProblem> problems;
    for (const Sequence &candidate : wl.database)
        problems.push_back(RaceProblem::thresholdScreen(
            costs, threshold, wl.query, candidate));
    return problems;
}

TEST(ParallelBatch, BitIdenticalToSerialRun)
{
    std::vector<RaceProblem> problems = screeningBatch(11, 48, 24);

    RaceEngine serial(withThreads(1));
    RaceEngine parallel(withThreads(4));
    BatchOutcome want = serial.solveBatch(problems);
    BatchOutcome got = parallel.solveBatch(problems);

    EXPECT_EQ(serial.stats().parallelBatches, 0u);
    EXPECT_EQ(parallel.stats().parallelBatches, 1u);
    EXPECT_EQ(parallel.stats().solves, problems.size());

    ASSERT_EQ(got.results.size(), want.results.size());
    for (size_t i = 0; i < want.results.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdenticalResults(got.results[i], want.results[i]);
    }

    ASSERT_TRUE(got.schedule.has_value());
    ASSERT_TRUE(want.schedule.has_value());
    EXPECT_EQ(got.schedule->makespanCycles, want.schedule->makespanCycles);
    EXPECT_EQ(got.schedule->busyCycles, want.schedule->busyCycles);
    EXPECT_EQ(got.schedule->acceptedCount, want.schedule->acceptedCount);
    EXPECT_EQ(got.busyCycles(), want.busyCycles());
}

TEST(ParallelBatch, RepeatedRunsAreDeterministic)
{
    std::vector<RaceProblem> problems = screeningBatch(12, 32, 20);
    RaceEngine engine(withThreads(8));
    BatchOutcome first = engine.solveBatch(problems);
    for (int round = 0; round < 3; ++round) {
        BatchOutcome again = engine.solveBatch(problems);
        ASSERT_EQ(again.results.size(), first.results.size());
        for (size_t i = 0; i < first.results.size(); ++i) {
            SCOPED_TRACE(i);
            expectIdenticalResults(again.results[i], first.results[i]);
        }
    }
    // Plans were reused across rounds, not rebuilt per solve.
    EXPECT_LT(engine.stats().plansBuilt, engine.stats().solves);
}

TEST(ParallelBatch, ScreenVerdictsMatchDpFilter)
{
    util::Rng rng(13);
    auto wl = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), 16, 40, 0.25,
        bio::MutationModel::uniform(0.12));
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    const bio::Score threshold = 18;

    RaceEngine engine(withThreads(4));
    BatchOutcome batch =
        engine.screen(costs, threshold, wl.query, wl.database);
    ASSERT_EQ(batch.results.size(), wl.database.size());
    for (size_t i = 0; i < wl.database.size(); ++i) {
        bio::Score truth =
            bio::globalScore(wl.query, wl.database[i], costs);
        EXPECT_EQ(batch.results[i].accepted, truth <= threshold) << i;
        if (batch.results[i].accepted)
            EXPECT_EQ(batch.results[i].score, truth) << i;
        EXPECT_LE(batch.results[i].cyclesUsed,
                  static_cast<sim::Tick>(threshold))
            << i;
    }
}

TEST(ParallelBatch, MixedKindBatchFallsBackToSerial)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    Sequence q(Alphabet::dna(), "ACGTACGT");
    std::vector<RaceProblem> problems;
    problems.push_back(RaceProblem::pairwiseAlignment(costs, q, q));
    problems.push_back(
        RaceProblem::dtw({1, 3, 5, 4}, {1, 4, 5, 4}));

    RaceEngine engine(withThreads(4));
    BatchOutcome batch = engine.solveBatch(problems);
    ASSERT_EQ(batch.results.size(), 2u);
    EXPECT_EQ(engine.stats().parallelBatches, 0u);
    EXPECT_EQ(batch.results[0].score, 8);
    EXPECT_FALSE(batch.schedule.has_value());
}

TEST(ParallelBatch, EarlyTerminationTogglesAccountingNotVerdicts)
{
    std::vector<RaceProblem> problems = screeningBatch(14, 36, 22);

    api::EngineConfig measure = withThreads(4);
    measure.earlyTerminate = false;
    RaceEngine truncating(withThreads(4));
    RaceEngine measuring(measure);

    BatchOutcome fast = truncating.solveBatch(problems);
    BatchOutcome full = measuring.solveBatch(problems);
    ASSERT_EQ(fast.results.size(), full.results.size());
    for (size_t i = 0; i < full.results.size(); ++i) {
        EXPECT_EQ(fast.results[i].accepted, full.results[i].accepted);
        EXPECT_EQ(fast.results[i].score, full.results[i].score);
        EXPECT_EQ(fast.results[i].cyclesUsed,
                  full.results[i].cyclesUsed);
    }
    // Busy cycles agree; only the measurement engine knows the
    // counterfactual full-race latency of rejected candidates.
    EXPECT_EQ(fast.busyCycles(), full.busyCycles());
    EXPECT_GE(full.fullRaceCycles(), full.busyCycles());
    EXPECT_GE(full.speedup(), 1.0);
}

TEST(ParallelBatch, GateLevelLanePackedBatchMatchesBehavioral)
{
    // The GateLevel batch path replays every comparison on the
    // synthesized fabric's 64 bit-parallel lanes, cross-checking
    // against the behavioral race internally (a clean run IS the
    // agreement check); verdicts and scores must match the
    // Behavioral engine exactly, and estimates carry the measured
    // fabric inventory.
    std::vector<RaceProblem> problems = screeningBatch(15, 24, 22);

    api::EngineConfig gates = withThreads(2);
    gates.backend = api::BackendKind::GateLevel;
    RaceEngine gateEngine(gates);
    RaceEngine softEngine(withThreads(2));

    BatchOutcome hard = gateEngine.solveBatch(problems);
    BatchOutcome soft = softEngine.solveBatch(problems);
    ASSERT_EQ(hard.results.size(), soft.results.size());
    for (size_t i = 0; i < soft.results.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(hard.results[i].accepted, soft.results[i].accepted);
        EXPECT_EQ(hard.results[i].score, soft.results[i].score);
        EXPECT_EQ(hard.results[i].cyclesUsed,
                  soft.results[i].cyclesUsed);
        ASSERT_TRUE(hard.results[i].estimate.has_value());
        EXPECT_GT(hard.results[i].estimate->gateCount, 0u);
        EXPECT_GT(hard.results[i].estimate->energyJ, 0.0);
    }
    EXPECT_EQ(hard.busyCycles(), soft.busyCycles());
    ASSERT_TRUE(hard.schedule.has_value());
    EXPECT_EQ(hard.schedule->acceptedCount, hard.acceptedCount());
}

TEST(ParallelBatch, GateLevelLanePackedSerialWorkerStillPacks)
{
    // Lane packing is orthogonal to the thread pool: even a 1-worker
    // engine races the batch 64 lanes at a time.
    std::vector<RaceProblem> problems = screeningBatch(16, 12, 20);
    api::EngineConfig gates = withThreads(1);
    gates.backend = api::BackendKind::GateLevel;
    RaceEngine engine(gates);
    BatchOutcome batch = engine.solveBatch(problems);
    ASSERT_EQ(batch.results.size(), problems.size());
    EXPECT_EQ(engine.stats().parallelBatches, 0u);
    EXPECT_EQ(engine.stats().solves, problems.size());
    // Same-shape screens collapse onto cached fabrics: far fewer
    // plans than comparisons (shapes vary only by indel mutations).
    EXPECT_LT(engine.stats().plansBuilt, problems.size());
    EXPECT_GT(engine.stats().planCacheHits, 0u);
}

} // namespace
