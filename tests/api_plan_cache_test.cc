/**
 * @file
 * Tests for the RaceEngine shape-keyed plan cache: repeated same-shape
 * queries reuse one planned fabric (observable through the plansBuilt
 * stat), different shapes get distinct plans, the LRU capacity evicts,
 * and caching never changes results.
 */

#include <gtest/gtest.h>

#include "rl/api/api.h"
#include "rl/bio/align_dp.h"
#include "rl/pangraph/generate.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using api::BackendKind;
using api::EngineConfig;
using api::RaceEngine;
using api::RaceProblem;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

TEST(ApiPlanCache, SameShapeQueriesHitTheCache)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceEngine engine;

    util::Rng rng(4);
    for (int round = 0; round < 10; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 8);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 8);
        engine.solve(RaceProblem::pairwiseAlignment(costs, a, b));
    }
    EXPECT_EQ(engine.stats().solves, 10u);
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    EXPECT_EQ(engine.stats().planCacheHits, 9u);
    EXPECT_EQ(engine.planCacheSize(), 1u);
}

TEST(ApiPlanCache, DifferentShapesDoNotCollide)
{
    ScoreMatrix uniform2 =
        ScoreMatrix::uniform(Alphabet::dna(), bio::ScoreKind::Cost, 2);
    ScoreMatrix fig2b = ScoreMatrix::dnaShortestPath();
    RaceEngine engine;

    // Different grid sizes -> different plans.
    engine.solve(RaceProblem::pairwiseAlignment(fig2b, dna("ACTG"),
                                                dna("ACTG")));
    engine.solve(RaceProblem::pairwiseAlignment(fig2b, dna("ACTGA"),
                                                dna("ACTG")));
    EXPECT_EQ(engine.stats().plansBuilt, 2u);

    // Same size, different matrix contents -> a third plan, and each
    // matrix's own semantics are preserved (no cross-contamination).
    auto uniformResult = engine.solve(RaceProblem::pairwiseAlignment(
        uniform2, dna("ACTG"), dna("TTTT")));
    auto fig2bResult = engine.solve(RaceProblem::pairwiseAlignment(
        fig2b, dna("ACTG"), dna("TTTT")));
    EXPECT_EQ(engine.stats().plansBuilt, 3u);
    // All-diagonal costs 4 * 2 = 8 under the uniform matrix; Fig. 2b
    // prefers one T-T match plus six unit indels = 7.  Both must
    // survive caching side by side.
    EXPECT_EQ(uniformResult.score, 8);
    EXPECT_EQ(fig2bResult.score, 7);
}

TEST(ApiPlanCache, LruCapacityEvicts)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    EngineConfig config;
    config.planCacheCapacity = 1;
    RaceEngine engine(config);

    RaceProblem small =
        RaceProblem::pairwiseAlignment(costs, dna("ACT"), dna("ACT"));
    RaceProblem large = RaceProblem::pairwiseAlignment(
        costs, dna("ACTGACT"), dna("ACTGACT"));

    engine.solve(small); // build small
    engine.solve(large); // build large, evict small
    engine.solve(small); // rebuild small
    EXPECT_EQ(engine.stats().plansBuilt, 3u);
    EXPECT_EQ(engine.stats().planCacheHits, 0u);
    EXPECT_EQ(engine.planCacheSize(), 1u);
}

TEST(ApiPlanCache, ZeroCapacityDisablesCaching)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    EngineConfig config;
    config.planCacheCapacity = 0;
    RaceEngine engine(config);

    RaceProblem p =
        RaceProblem::pairwiseAlignment(costs, dna("ACT"), dna("ACT"));
    engine.solve(p);
    engine.solve(p);
    EXPECT_EQ(engine.stats().plansBuilt, 2u);
    EXPECT_EQ(engine.stats().planCacheHits, 0u);
    EXPECT_EQ(engine.planCacheSize(), 0u);
}

TEST(ApiPlanCache, GateLevelFabricIsReusedAcrossSolves)
{
    // Synthesis is the expensive step on the gate-level backend; the
    // cache must make repeat same-shape queries skip it while new
    // strings still load onto the fabric's primary inputs correctly.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    EngineConfig config;
    config.backend = BackendKind::GateLevel;
    RaceEngine engine(config);

    util::Rng rng(17);
    for (int round = 0; round < 4; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 5);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 5);
        auto r = engine.solve(
            RaceProblem::pairwiseAlignment(costs, a, b));
        EXPECT_TRUE(r.completed);
    }
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    EXPECT_EQ(engine.stats().planCacheHits, 3u);
}

TEST(ApiPlanCache, ThresholdIsNotPartOfTheShape)
{
    // The threshold is a cycle budget, not hardware: screens with
    // different thresholds share one fabric plan.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceEngine engine;
    engine.solve(RaceProblem::thresholdScreen(costs, 6, dna("ACTG"),
                                              dna("AGTG")));
    engine.solve(RaceProblem::thresholdScreen(costs, 12, dna("ACTG"),
                                              dna("AGTG")));
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    EXPECT_EQ(engine.stats().planCacheHits, 1u);
}

TEST(ApiPlanCache, GraphAlignPlansKeyOnTopologyNotReads)
{
    // One loaded pangenome serves many reads: distinct reads (and
    // distinct read lengths, and distinct thresholds) all hit the
    // same plan, because the key is the graph topology + matrix.
    util::Rng rng(6);
    auto graph = std::make_shared<pangraph::VariationGraph>(
        pangraph::randomVariationGraph(
            rng, Alphabet::dna(), pangraph::VariationGraphParams{}));
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    RaceEngine engine;
    for (int round = 0; round < 10; ++round) {
        Sequence read = Sequence::random(
            rng, Alphabet::dna(),
            static_cast<size_t>(rng.uniformInt(4, 20)));
        bio::Score threshold =
            round % 2 == 0 ? bio::kScoreInfinity
                           : static_cast<bio::Score>(10 + round);
        engine.solve(api::RaceProblem::graphAlign(costs, read, graph,
                                                  threshold));
    }
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    EXPECT_EQ(engine.stats().planCacheHits, 9u);
    EXPECT_EQ(engine.planCacheSize(), 1u);
}

TEST(ApiPlanCache, GraphAlignNeverCollidesWithGridShapes)
{
    // Grid-family and GraphAlign plans share one LRU; interleaving
    // them over the same matrix must build exactly one plan each and
    // keep both correct.
    util::Rng rng(13);
    auto graph = std::make_shared<pangraph::VariationGraph>(
        pangraph::randomVariationGraph(
            rng, Alphabet::dna(), pangraph::VariationGraphParams{}));
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    RaceEngine engine;

    Sequence read = Sequence::random(rng, Alphabet::dna(), 8);
    Sequence other = Sequence::random(rng, Alphabet::dna(), 8);
    for (int round = 0; round < 3; ++round) {
        auto gridResult = engine.solve(
            api::RaceProblem::pairwiseAlignment(costs, read, other));
        auto graphResult = engine.solve(
            api::RaceProblem::graphAlign(costs, read, graph));
        EXPECT_EQ(gridResult.score,
                  bio::globalScore(read, other, costs));
        EXPECT_TRUE(graphResult.completed);
    }
    EXPECT_EQ(engine.stats().plansBuilt, 2u);
    EXPECT_EQ(engine.stats().planCacheHits, 4u);
    EXPECT_EQ(engine.planCacheSize(), 2u);
}

TEST(ApiPlanCache, DistinctGraphTopologiesGetDistinctPlans)
{
    // Same matrix, same segment/link counts, different labels: the
    // fingerprint in the key (re-verified structurally on every hit)
    // must keep the plans apart.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    auto one = std::make_shared<pangraph::VariationGraph>(
        Alphabet::dna());
    one->addSegment("a", dna("ACTG"));
    auto two = std::make_shared<pangraph::VariationGraph>(
        Alphabet::dna());
    two->addSegment("a", dna("TTTT"));

    RaceEngine engine;
    Sequence read = dna("ACTG");
    auto first =
        engine.solve(api::RaceProblem::graphAlign(costs, read, one));
    auto second =
        engine.solve(api::RaceProblem::graphAlign(costs, read, two));
    EXPECT_EQ(engine.stats().plansBuilt, 2u);
    // One-segment graphs are pairwise alignments: ACTG vs ACTG all
    // matches (4 x 1); vs TTTT one T-T match + mismatches/indels.
    EXPECT_EQ(first.score, 4);
    EXPECT_EQ(second.score, bio::globalScore(read, dna("TTTT"), costs));
}

TEST(ApiPlanCache, ClearPlanCacheDropsPlansKeepsStats)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceEngine engine;
    engine.solve(RaceProblem::pairwiseAlignment(costs, dna("ACT"),
                                                dna("ACT")));
    EXPECT_EQ(engine.planCacheSize(), 1u);
    engine.clearPlanCache();
    EXPECT_EQ(engine.planCacheSize(), 0u);
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    engine.solve(RaceProblem::pairwiseAlignment(costs, dna("ACT"),
                                                dna("ACT")));
    EXPECT_EQ(engine.stats().plansBuilt, 2u);
}

} // namespace
