/**
 * @file
 * Tests for the RaceEngine shape-keyed plan cache: repeated same-shape
 * queries reuse one planned fabric (observable through the plansBuilt
 * stat), different shapes get distinct plans, the LRU capacity evicts,
 * and caching never changes results.
 */

#include <gtest/gtest.h>

#include "rl/api/api.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using api::BackendKind;
using api::EngineConfig;
using api::RaceEngine;
using api::RaceProblem;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

Sequence
dna(const std::string &text)
{
    return Sequence(Alphabet::dna(), text);
}

TEST(ApiPlanCache, SameShapeQueriesHitTheCache)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceEngine engine;

    util::Rng rng(4);
    for (int round = 0; round < 10; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 8);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 8);
        engine.solve(RaceProblem::pairwiseAlignment(costs, a, b));
    }
    EXPECT_EQ(engine.stats().solves, 10u);
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    EXPECT_EQ(engine.stats().planCacheHits, 9u);
    EXPECT_EQ(engine.planCacheSize(), 1u);
}

TEST(ApiPlanCache, DifferentShapesDoNotCollide)
{
    ScoreMatrix uniform2 =
        ScoreMatrix::uniform(Alphabet::dna(), bio::ScoreKind::Cost, 2);
    ScoreMatrix fig2b = ScoreMatrix::dnaShortestPath();
    RaceEngine engine;

    // Different grid sizes -> different plans.
    engine.solve(RaceProblem::pairwiseAlignment(fig2b, dna("ACTG"),
                                                dna("ACTG")));
    engine.solve(RaceProblem::pairwiseAlignment(fig2b, dna("ACTGA"),
                                                dna("ACTG")));
    EXPECT_EQ(engine.stats().plansBuilt, 2u);

    // Same size, different matrix contents -> a third plan, and each
    // matrix's own semantics are preserved (no cross-contamination).
    auto uniformResult = engine.solve(RaceProblem::pairwiseAlignment(
        uniform2, dna("ACTG"), dna("TTTT")));
    auto fig2bResult = engine.solve(RaceProblem::pairwiseAlignment(
        fig2b, dna("ACTG"), dna("TTTT")));
    EXPECT_EQ(engine.stats().plansBuilt, 3u);
    // All-diagonal costs 4 * 2 = 8 under the uniform matrix; Fig. 2b
    // prefers one T-T match plus six unit indels = 7.  Both must
    // survive caching side by side.
    EXPECT_EQ(uniformResult.score, 8);
    EXPECT_EQ(fig2bResult.score, 7);
}

TEST(ApiPlanCache, LruCapacityEvicts)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    EngineConfig config;
    config.planCacheCapacity = 1;
    RaceEngine engine(config);

    RaceProblem small =
        RaceProblem::pairwiseAlignment(costs, dna("ACT"), dna("ACT"));
    RaceProblem large = RaceProblem::pairwiseAlignment(
        costs, dna("ACTGACT"), dna("ACTGACT"));

    engine.solve(small); // build small
    engine.solve(large); // build large, evict small
    engine.solve(small); // rebuild small
    EXPECT_EQ(engine.stats().plansBuilt, 3u);
    EXPECT_EQ(engine.stats().planCacheHits, 0u);
    EXPECT_EQ(engine.planCacheSize(), 1u);
}

TEST(ApiPlanCache, ZeroCapacityDisablesCaching)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    EngineConfig config;
    config.planCacheCapacity = 0;
    RaceEngine engine(config);

    RaceProblem p =
        RaceProblem::pairwiseAlignment(costs, dna("ACT"), dna("ACT"));
    engine.solve(p);
    engine.solve(p);
    EXPECT_EQ(engine.stats().plansBuilt, 2u);
    EXPECT_EQ(engine.stats().planCacheHits, 0u);
    EXPECT_EQ(engine.planCacheSize(), 0u);
}

TEST(ApiPlanCache, GateLevelFabricIsReusedAcrossSolves)
{
    // Synthesis is the expensive step on the gate-level backend; the
    // cache must make repeat same-shape queries skip it while new
    // strings still load onto the fabric's primary inputs correctly.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    EngineConfig config;
    config.backend = BackendKind::GateLevel;
    RaceEngine engine(config);

    util::Rng rng(17);
    for (int round = 0; round < 4; ++round) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), 5);
        Sequence b = Sequence::random(rng, Alphabet::dna(), 5);
        auto r = engine.solve(
            RaceProblem::pairwiseAlignment(costs, a, b));
        EXPECT_TRUE(r.completed);
    }
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    EXPECT_EQ(engine.stats().planCacheHits, 3u);
}

TEST(ApiPlanCache, ThresholdIsNotPartOfTheShape)
{
    // The threshold is a cycle budget, not hardware: screens with
    // different thresholds share one fabric plan.
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceEngine engine;
    engine.solve(RaceProblem::thresholdScreen(costs, 6, dna("ACTG"),
                                              dna("AGTG")));
    engine.solve(RaceProblem::thresholdScreen(costs, 12, dna("ACTG"),
                                              dna("AGTG")));
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    EXPECT_EQ(engine.stats().planCacheHits, 1u);
}

TEST(ApiPlanCache, ClearPlanCacheDropsPlansKeepsStats)
{
    ScoreMatrix costs = ScoreMatrix::dnaShortestPathInfMismatch();
    RaceEngine engine;
    engine.solve(RaceProblem::pairwiseAlignment(costs, dna("ACT"),
                                                dna("ACT")));
    EXPECT_EQ(engine.planCacheSize(), 1u);
    engine.clearPlanCache();
    EXPECT_EQ(engine.planCacheSize(), 0u);
    EXPECT_EQ(engine.stats().plansBuilt, 1u);
    engine.solve(RaceProblem::pairwiseAlignment(costs, dna("ACT"),
                                                dna("ACT")));
    EXPECT_EQ(engine.stats().plansBuilt, 2u);
}

} // namespace
