/**
 * @file
 * Tests for the FASTA reader/writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "rl/bio/fasta.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::FastaRecord;
using bio::Sequence;

TEST(Fasta, ParsesMultipleRecords)
{
    std::istringstream in(
        ">query one\nACGT\nACGT\n"
        "; a comment line\n"
        ">query two\n\nGG\nTT\n");
    auto records = bio::readFasta(in, Alphabet::dna());
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].description, "query one");
    EXPECT_EQ(records[0].sequence.str(), "ACGTACGT");
    EXPECT_EQ(records[1].description, "query two");
    EXPECT_EQ(records[1].sequence.str(), "GGTT");
}

TEST(Fasta, FoldsLowercase)
{
    std::istringstream in(">x\nacgt\n");
    auto records = bio::readFasta(in, Alphabet::dna());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sequence.str(), "ACGT");
}

TEST(Fasta, ToleratesWhitespaceInsideSequenceLines)
{
    std::istringstream in(">x\nAC GT\t\n");
    auto records = bio::readFasta(in, Alphabet::dna());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sequence.str(), "ACGT");
}

TEST(Fasta, EmptyStreamYieldsNoRecords)
{
    std::istringstream in("");
    EXPECT_TRUE(bio::readFasta(in, Alphabet::dna()).empty());
}

TEST(Fasta, RejectsEmptyRecordTyped)
{
    // An empty record is almost always a truncated or corrupted
    // file; reject it with the offending description in the message.
    std::istringstream in(">empty\n>full\nAC\n");
    auto records = bio::tryReadFasta(in, Alphabet::dna());
    ASSERT_FALSE(records.ok());
    EXPECT_EQ(records.status().code(), ErrorCode::ParseError);
    EXPECT_NE(records.status().message().find("'empty'"),
              std::string::npos);
    EXPECT_NE(records.status().message().find("no sequence"),
              std::string::npos);
}

TEST(Fasta, RejectsEmptyTrailingRecordTyped)
{
    std::istringstream in(">full\nAC\n>trailing\n");
    auto records = bio::tryReadFasta(in, Alphabet::dna());
    ASSERT_FALSE(records.ok());
    EXPECT_EQ(records.status().code(), ErrorCode::ParseError);
    EXPECT_NE(records.status().message().find("trailing"),
              std::string::npos);
}

TEST(Fasta, ParsesCrlfLineEndings)
{
    // Windows-edited FASTA: CRLF everywhere, including the header.
    std::istringstream in(">query one\r\nACGT\r\nacgt\r\n\r\n>q2\r\nGG\r\n");
    auto records = bio::readFasta(in, Alphabet::dna());
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].description, "query one");
    EXPECT_EQ(records[0].sequence.str(), "ACGTACGT");
    EXPECT_EQ(records[1].sequence.str(), "GG");
}

TEST(Fasta, ToleratesBlankLinesAroundRecords)
{
    std::istringstream in("\n\n>x\n\nAC\n\nGT\n\n\n>y\ntt\n\n");
    auto records = bio::readFasta(in, Alphabet::dna());
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].sequence.str(), "ACGT");
    EXPECT_EQ(records[1].sequence.str(), "TT");
}

TEST(Fasta, RejectsDataBeforeHeaderTyped)
{
    std::istringstream in("ACGT\n");
    auto records = bio::tryReadFasta(in, Alphabet::dna());
    ASSERT_FALSE(records.ok());
    EXPECT_EQ(records.status().code(), ErrorCode::ParseError);
    EXPECT_NE(records.status().message().find("before any"),
              std::string::npos);
}

TEST(Fasta, RejectsForeignLettersTyped)
{
    std::istringstream in(">x\nACGU\n");
    auto records = bio::tryReadFasta(in, Alphabet::dna());
    ASSERT_FALSE(records.ok());
    EXPECT_EQ(records.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(records.status().message().find("not in alphabet"),
              std::string::npos);
}

TEST(FastaDeath, FatalWrapperExitsWithDiagnostic)
{
    // readFasta() stays a valueOrFatal() shim over tryReadFasta()
    // for CLI tools; one death test pins the wrapper's contract.
    std::istringstream in("ACGT\n");
    EXPECT_EXIT(bio::readFasta(in, Alphabet::dna()),
                ::testing::ExitedWithCode(1), "before any");
}

TEST(Fasta, RoundTripThroughWriter)
{
    std::vector<FastaRecord> records{
        {"alpha", Sequence(Alphabet::dna(), "ACGTACGTACGT")},
        {"beta", Sequence(Alphabet::dna(), "GG")},
    };
    std::ostringstream out;
    bio::writeFasta(out, records, /*width=*/5);
    std::istringstream in(out.str());
    auto parsed = bio::readFasta(in, Alphabet::dna());
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].description, "alpha");
    EXPECT_EQ(parsed[0].sequence, records[0].sequence);
    EXPECT_EQ(parsed[1].sequence, records[1].sequence);
}

TEST(Fasta, WriterRefusesEmptyRecordTyped)
{
    // The reader rejects empty records, so the writer must refuse to
    // produce files the library itself calls corrupted.
    std::vector<FastaRecord> records{
        {"empty", Sequence(Alphabet::dna())}};
    std::ostringstream out;
    racelogic::Status wrote = bio::tryWriteFasta(out, records);
    ASSERT_FALSE(wrote.ok());
    EXPECT_EQ(wrote.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(wrote.message().find("empty FASTA record"),
              std::string::npos);
}

TEST(Fasta, WriterWrapsLines)
{
    std::vector<FastaRecord> records{
        {"x", Sequence(Alphabet::dna(), "ACGTACGT")}};
    std::ostringstream out;
    bio::writeFasta(out, records, 4);
    EXPECT_EQ(out.str(), ">x\nACGT\nACGT\n");
}

TEST(Fasta, ProteinAlphabet)
{
    std::istringstream in(">p\nHEAGAWGHEE\n");
    auto records = bio::readFasta(in, Alphabet::protein());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].sequence.size(), 10u);
}

} // namespace
