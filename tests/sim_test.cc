/**
 * @file
 * Unit tests for rl/sim: the discrete-event kernel and statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rl/sim/event_queue.h"
#include "rl/sim/stats.h"

namespace {

using namespace racelogic;
using sim::EventQueue;
using sim::Tick;

// --------------------------------------------------------- EventQueue

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(5); });
    q.schedule(1, [&] { order.push_back(1); });
    q.schedule(3, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, TieBreaksByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(2, [&] { order.push_back(0); }, /*priority=*/1);
    q.schedule(2, [&] { order.push_back(1); }, /*priority=*/0);
    q.schedule(2, [&] { order.push_back(2); }, /*priority=*/0);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(4, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, ZeroDelaySelfScheduleFiresSameTick)
{
    EventQueue q;
    int count = 0;
    q.schedule(3, [&] {
        if (++count < 4)
            q.scheduleIn(0, [&] { ++count; });
    });
    q.run();
    EXPECT_EQ(q.now(), 3u);
    EXPECT_EQ(count, 2); // one rescheduled event fired
}

TEST(EventQueue, RunUntilHorizonStopsEarly)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] { ++fired; });
    q.schedule(10, [&] { ++fired; });
    size_t n = q.runUntil(5);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 5u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunWithLimit)
{
    EventQueue q;
    int fired = 0;
    for (Tick t = 1; t <= 10; ++t)
        q.schedule(t, [&] { ++fired; });
    EXPECT_EQ(q.run(3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.pending(), 7u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    q.schedule(4, [] {});
    q.step();
    q.schedule(9, [] {});
    q.reset();
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.fired(), 0u);
}

TEST(EventQueueDeath, PastSchedulingIsABug)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.step();
    EXPECT_DEATH(q.schedule(5, [] {}), "scheduling into the past");
}

// ------------------------------------------------------- RunningStats

TEST(RunningStats, BasicAggregates)
{
    sim::RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStats, MergeMatchesCombinedStream)
{
    sim::RunningStats a, b, combined;
    for (int i = 0; i < 50; ++i) {
        double v = std::sin(i) * 10;
        (i % 2 ? a : b).add(v);
        combined.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    sim::RunningStats a, b;
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

// ---------------------------------------------------------- Histogram

TEST(Histogram, CountsAndPercentiles)
{
    sim::Histogram h;
    for (int64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.minValue(), 1);
    EXPECT_EQ(h.maxValue(), 100);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_EQ(h.percentile(0.5), 50);
    EXPECT_EQ(h.percentile(0.99), 99);
    EXPECT_EQ(h.percentile(1.0), 100);
}

TEST(Histogram, WeightedAdd)
{
    sim::Histogram h;
    h.add(7, 10);
    h.add(3, 30);
    EXPECT_EQ(h.count(), 40u);
    EXPECT_EQ(h.at(7), 10u);
    EXPECT_EQ(h.at(3), 30u);
    EXPECT_EQ(h.at(5), 0u);
    EXPECT_EQ(h.percentile(0.5), 3);
}

// ------------------------------------------------------------ polyFit

TEST(PolyFit, RecoversExactQuadratic)
{
    std::vector<double> xs, ys;
    for (double x = 1; x <= 20; ++x) {
        xs.push_back(x);
        ys.push_back(3.0 * x * x - 2.0 * x + 5.0);
    }
    auto c = sim::polyFit(xs, ys, 2);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NEAR(c[0], 5.0, 1e-6);
    EXPECT_NEAR(c[1], -2.0, 1e-6);
    EXPECT_NEAR(c[2], 3.0, 1e-6);
}

TEST(PolyFit, MonomialFitMatchesPaperModelFamily)
{
    // The paper fits energy to a*N^3 + b*N^2 with no lower terms.
    std::vector<double> xs, ys;
    for (double x = 2; x <= 40; x += 2) {
        xs.push_back(x);
        ys.push_back(2.65 * x * x * x + 6.41 * x * x);
    }
    auto c = sim::monomialFit(xs, ys, {3, 2});
    ASSERT_EQ(c.size(), 4u);
    EXPECT_NEAR(c[3], 2.65, 1e-6);
    EXPECT_NEAR(c[2], 6.41, 1e-6);
    EXPECT_NEAR(c[1], 0.0, 1e-9);
    EXPECT_NEAR(c[0], 0.0, 1e-9);
}

TEST(PolyFit, PolyEvalHorner)
{
    std::vector<double> c{1.0, 2.0, 3.0}; // 1 + 2x + 3x^2
    EXPECT_DOUBLE_EQ(sim::polyEval(c, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(sim::polyEval(c, 2.0), 17.0);
}

TEST(PolyFit, RSquaredPerfectAndPoor)
{
    std::vector<double> obs{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(sim::rSquared(obs, obs), 1.0);
    std::vector<double> bad{4, 3, 2, 1};
    EXPECT_LT(sim::rSquared(obs, bad), 0.0); // worse than the mean
}

TEST(PolyFitDeath, NeedsEnoughPoints)
{
    EXPECT_DEATH(sim::polyFit({1.0}, {1.0}, 2), "at least as many");
}

} // namespace
