/**
 * @file
 * Tests for §4.3 wavefront clock gating: per-region windows, the
 * 2m-cycle worst-case crossing bound, activity savings, and the
 * interaction with early termination.
 */

#include <gtest/gtest.h>

#include "rl/core/clock_gating.h"
#include "rl/core/race_grid.h"
#include "rl/util/random.h"

namespace {

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::GatingAnalysis;
using core::RaceGridAligner;
using core::RaceGridResult;

RaceGridResult
worstCaseRace(util::Rng &rng, size_t n)
{
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    auto [s, w] = bio::worstCasePair(rng, Alphabet::dna(), n);
    return aligner.align(s, w);
}

RaceGridResult
bestCaseRace(util::Rng &rng, size_t n)
{
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    Sequence s = Sequence::random(rng, Alphabet::dna(), n);
    return aligner.align(s, s);
}

TEST(ClockGating, RegionCountsAndTotals)
{
    util::Rng rng(1);
    RaceGridResult race = worstCaseRace(rng, 16);
    GatingAnalysis g = core::analyzeClockGating(race, 4);
    EXPECT_EQ(g.regions, 16u);
    EXPECT_EQ(g.totalCycles, 32u);
    EXPECT_EQ(g.ungatedDffCycles, 16ull * 16 * 3 * 32);
    EXPECT_EQ(g.gateOverheadCycles, 16ull * 32);
}

class GatingWindows
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{};

TEST_P(GatingWindows, WorstCaseRegionWindowIsAboutTwoM)
{
    auto [n, m] = GetParam();
    if (m > n)
        GTEST_SKIP();
    util::Rng rng(100 + n * 7 + m);
    RaceGridResult race = worstCaseRace(rng, n);
    GatingAnalysis g = core::analyzeClockGating(race, m);
    // Eq. 6's premise: a full m x m region is active for the
    // wavefront crossing, 2m - 2 cycles, plus the wake/latch edges.
    for (size_t r = 0; r < g.windows.rows(); ++r) {
        for (size_t c = 0; c < g.windows.cols(); ++c) {
            auto active = g.windows.at(r, c).activeCycles();
            EXPECT_GE(active, 1u);
            EXPECT_LE(active, 2 * m + 1)
                << "region (" << r << "," << c << ") of side " << m;
        }
    }
}

TEST_P(GatingWindows, GatedActivityNeverExceedsUngated)
{
    auto [n, m] = GetParam();
    if (m > n)
        GTEST_SKIP();
    util::Rng rng(200 + n * 7 + m);
    RaceGridResult race = worstCaseRace(rng, n);
    GatingAnalysis g = core::analyzeClockGating(race, m);
    EXPECT_LE(g.gatedDffCycles, g.ungatedDffCycles);
    EXPECT_GT(g.gatedDffCycles, 0u);
    EXPECT_LE(g.clockActivityRatio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndGranularities, GatingWindows,
    ::testing::Combine(::testing::Values<size_t>(8, 12, 16, 24, 32),
                       ::testing::Values<size_t>(1, 2, 4, 8)));

TEST(ClockGating, SavingsGrowWithProblemSize)
{
    // The wavefront covers an O(1/N) fraction of the fabric each
    // cycle, so gating saves proportionally more at larger N.
    util::Rng rng(3);
    GatingAnalysis small = core::analyzeClockGating(
        worstCaseRace(rng, 8), 2);
    GatingAnalysis large = core::analyzeClockGating(
        worstCaseRace(rng, 64), 2);
    EXPECT_LT(large.clockActivityRatio(),
              small.clockActivityRatio());
    EXPECT_LT(large.clockActivityRatio(), 0.2)
        << "at N=64 with m=2 the clock should be mostly idle";
}

TEST(ClockGating, BestCaseWindowsAreShorterThanWorst)
{
    util::Rng rng(4);
    GatingAnalysis best = core::analyzeClockGating(
        bestCaseRace(rng, 32), 4);
    GatingAnalysis worst = core::analyzeClockGating(
        worstCaseRace(rng, 32), 4);
    EXPECT_LT(best.gatedDffCycles, worst.gatedDffCycles);
}

TEST(ClockGating, GranularityExtremes)
{
    util::Rng rng(5);
    RaceGridResult race = worstCaseRace(rng, 16);
    // m = 1: every cell its own region; overhead = N^2 gating cells.
    GatingAnalysis fine = core::analyzeClockGating(race, 1);
    EXPECT_EQ(fine.regions, 256u);
    // m = N: one region clocked the whole race: no clock savings.
    GatingAnalysis coarse = core::analyzeClockGating(race, 16);
    EXPECT_EQ(coarse.regions, 1u);
    EXPECT_NEAR(coarse.clockActivityRatio(), 1.0, 0.1);
    EXPECT_LT(fine.clockActivityRatio(), 0.3);
}

TEST(ClockGating, PartialEdgeRegionsHandled)
{
    // n not divisible by m: edge regions are partial but every cell
    // still belongs to exactly one region.
    util::Rng rng(6);
    RaceGridResult race = worstCaseRace(rng, 10);
    GatingAnalysis g = core::analyzeClockGating(race, 4);
    EXPECT_EQ(g.windows.rows(), 3u);
    EXPECT_EQ(g.windows.cols(), 3u);
    EXPECT_LE(g.gatedDffCycles, g.ungatedDffCycles);
}

TEST(ClockGating, ScoreUnaffectedByAnalysis)
{
    // Gating is an observer: the race result it is fed is untouched.
    util::Rng rng(7);
    RaceGridAligner aligner(ScoreMatrix::dnaShortestPathInfMismatch());
    Sequence a = Sequence::random(rng, Alphabet::dna(), 12);
    Sequence b = Sequence::random(rng, Alphabet::dna(), 12);
    RaceGridResult race = aligner.align(a, b);
    bio::Score before = race.score;
    core::analyzeClockGating(race, 4);
    EXPECT_EQ(race.score, before);
}

} // namespace
