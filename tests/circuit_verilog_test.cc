/**
 * @file
 * Tests for the structural Verilog exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "rl/circuit/verilog.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/core/race_network.h"
#include "rl/graph/dag.h"

namespace {

using namespace racelogic;
using circuit::Netlist;
using circuit::NetId;
using circuit::VerilogPort;

std::string
emit(const Netlist &netlist, const std::vector<VerilogPort> &outputs)
{
    std::ostringstream os;
    circuit::writeVerilog(os, netlist, "dut", outputs);
    return os.str();
}

TEST(Verilog, BasicModuleStructure)
{
    Netlist n;
    NetId a = n.input("a");
    NetId b = n.input("b");
    NetId y = n.andGate({a, b});
    std::string v = emit(n, {{"y", y}});
    EXPECT_NE(v.find("module dut ("), std::string::npos);
    EXPECT_NE(v.find("input wire clk"), std::string::npos);
    EXPECT_NE(v.find("input wire rst"), std::string::npos);
    EXPECT_NE(v.find("input wire a"), std::string::npos);
    EXPECT_NE(v.find("output wire y"), std::string::npos);
    EXPECT_NE(v.find("a & b"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, EveryGateFlavourEmits)
{
    Netlist n;
    NetId a = n.input("a");
    NetId b = n.input("b");
    NetId s = n.input("s");
    n.constant(false);
    n.constant(true);
    n.bufGate(a);
    n.notGate(a);
    n.orGate({a, b});
    n.nandGate({a, b});
    n.norGate({a, b});
    n.xorGate(a, b);
    NetId y = n.xnorGate(a, b);
    n.mux(s, a, b);
    NetId q = n.dff(y, /*init=*/true);
    std::string v = emit(n, {{"q", q}});
    EXPECT_NE(v.find("1'b0;"), std::string::npos);
    EXPECT_NE(v.find("1'b1;"), std::string::npos);
    EXPECT_NE(v.find("= ~a"), std::string::npos);
    EXPECT_NE(v.find("a | b"), std::string::npos);
    EXPECT_NE(v.find("~(a & b)"), std::string::npos);
    EXPECT_NE(v.find("~(a | b)"), std::string::npos);
    EXPECT_NE(v.find("a ^ b"), std::string::npos);
    EXPECT_NE(v.find("~(a ^ b)"), std::string::npos);
    EXPECT_NE(v.find("s ? "), std::string::npos);
    EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
    EXPECT_NE(v.find("<= 1'b1;"), std::string::npos) << "reset init";
}

TEST(Verilog, EnableDffUsesElseIf)
{
    Netlist n;
    NetId d = n.input("d");
    NetId en = n.input("en");
    NetId q = n.dff(d, false, en);
    std::string v = emit(n, {{"q", q}});
    EXPECT_NE(v.find("else if (en)"), std::string::npos);
}

TEST(Verilog, RaceGridFabricExports)
{
    core::RaceGridCircuit fabric(bio::Alphabet::dna(), 3, 3);
    std::ostringstream os;
    circuit::writeVerilog(
        os, fabric.netlist(), "race_grid_3x3",
        {{"done", static_cast<NetId>(fabric.netlist().gateCount() - 1)}});
    std::string v = os.str();
    EXPECT_NE(v.find("module race_grid_3x3"), std::string::npos);
    // One wire/reg declaration per non-input gate.
    size_t regs = 0;
    for (size_t pos = 0; (pos = v.find("    reg  ", pos)) !=
                         std::string::npos;
         pos += 9)
        ++regs;
    EXPECT_EQ(regs, fabric.netlist().dffCount());
}

TEST(Verilog, CompiledDagRaceExports)
{
    graph::Dag dag = graph::makeFig3ExampleDag();
    core::RaceCircuit rc =
        core::compileRaceCircuit(dag, {0, 1}, core::RaceType::Or);
    std::ostringstream os;
    circuit::writeVerilog(os, rc.netlist, "fig3_or_race",
                          {{"sink", rc.nodeNets[4]}});
    std::string v = os.str();
    EXPECT_NE(v.find("input wire src0"), std::string::npos);
    EXPECT_NE(v.find("input wire src1"), std::string::npos);
    EXPECT_NE(v.find("assign sink = "), std::string::npos);
}

TEST(Verilog, DeterministicOutput)
{
    Netlist n;
    NetId a = n.input("a");
    NetId q = n.dff(n.notGate(a));
    auto first = emit(n, {{"q", q}});
    auto second = emit(n, {{"q", q}});
    EXPECT_EQ(first, second);
}

TEST(VerilogDeath, RequiresAnOutput)
{
    Netlist n;
    n.input("a");
    std::ostringstream os;
    EXPECT_DEATH(circuit::writeVerilog(os, n, "dut", {}),
                 "at least one output");
}

} // namespace
