/**
 * @file
 * Unit tests for rl/util: logging, PRNG, bit utilities, strings,
 * tables, and the Grid container.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "rl/util/bitops.h"
#include "rl/util/grid.h"
#include "rl/util/logging.h"
#include "rl/util/random.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"
#include "rl/util/thread_pool.h"

namespace {

using namespace racelogic;

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    util::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    util::Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

TEST(Rng, UniformIntStaysInBounds)
{
    util::Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, UniformIntSingletonRange)
{
    util::Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange)
{
    util::Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniformInt(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, IndexInRange)
{
    util::Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.index(13), 13u);
}

TEST(Rng, UniformRealInHalfOpenUnitInterval)
{
    util::Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BernoulliExtremes)
{
    util::Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    util::Rng rng(13);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / double(trials), 0.3, 0.02);
}

TEST(Rng, ShufflePreservesMultiset)
{
    util::Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream)
{
    util::Rng a(21);
    util::Rng b = a.split();
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

// ------------------------------------------------------------- bitops

TEST(Bitops, IsPowerOfTwo)
{
    EXPECT_FALSE(util::isPowerOfTwo(0));
    EXPECT_TRUE(util::isPowerOfTwo(1));
    EXPECT_TRUE(util::isPowerOfTwo(2));
    EXPECT_FALSE(util::isPowerOfTwo(3));
    EXPECT_TRUE(util::isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(util::isPowerOfTwo((1ULL << 40) + 1));
}

TEST(Bitops, Log2Floor)
{
    EXPECT_EQ(util::log2Floor(1), 0u);
    EXPECT_EQ(util::log2Floor(2), 1u);
    EXPECT_EQ(util::log2Floor(3), 1u);
    EXPECT_EQ(util::log2Floor(4), 2u);
    EXPECT_EQ(util::log2Floor(1023), 9u);
    EXPECT_EQ(util::log2Floor(1024), 10u);
}

TEST(Bitops, Log2Ceil)
{
    EXPECT_EQ(util::log2Ceil(1), 0u);
    EXPECT_EQ(util::log2Ceil(2), 1u);
    EXPECT_EQ(util::log2Ceil(3), 2u);
    EXPECT_EQ(util::log2Ceil(4), 2u);
    EXPECT_EQ(util::log2Ceil(5), 3u);
}

TEST(Bitops, BitsForValue)
{
    EXPECT_EQ(util::bitsForValue(0), 1u);
    EXPECT_EQ(util::bitsForValue(1), 1u);
    EXPECT_EQ(util::bitsForValue(2), 2u);
    EXPECT_EQ(util::bitsForValue(3), 2u);
    EXPECT_EQ(util::bitsForValue(4), 3u);
    EXPECT_EQ(util::bitsForValue(255), 8u);
    EXPECT_EQ(util::bitsForValue(256), 9u);
}

TEST(Bitops, CeilDiv)
{
    EXPECT_EQ(util::ceilDiv(10, 5), 2u);
    EXPECT_EQ(util::ceilDiv(11, 5), 3u);
    EXPECT_EQ(util::ceilDiv(1, 5), 1u);
}

// ------------------------------------------------------------ strings

TEST(Strings, SplitKeepsEmptyFields)
{
    auto fields = util::split("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(util::trim("  hi \t\n"), "hi");
    EXPECT_EQ(util::trim("hi"), "hi");
    EXPECT_EQ(util::trim("   "), "");
    EXPECT_EQ(util::trim(""), "");
}

TEST(Strings, Format)
{
    EXPECT_EQ(util::format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(util::format("%05.1f", 3.25), "003.2");
}

TEST(Strings, SiFormat)
{
    EXPECT_EQ(util::siFormat(2.65e-9, "J"), "2.65nJ");
    EXPECT_EQ(util::siFormat(0.0, "J"), "0J");
    EXPECT_EQ(util::siFormat(1.5e6, "Hz"), "1.5MHz");
}

TEST(Strings, CompactDouble)
{
    EXPECT_EQ(util::compactDouble(3.1400, 4), "3.14");
    EXPECT_EQ(util::compactDouble(2.0, 4), "2");
    EXPECT_EQ(util::compactDouble(0.5, 4), "0.5");
}

// -------------------------------------------------------------- table

TEST(TextTable, AlignsColumns)
{
    util::TextTable table({"N", "value"});
    table.row(1, "a");
    table.row(100, "bb");
    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("N"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    util::TextTable table({"a", "b"});
    table.row(1, 2);
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, DoubleFormatting)
{
    util::TextTable table({"x"});
    table.row(1.5);
    table.row(1.23456789e9);
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_NE(os.str().find("1.5"), std::string::npos);
    EXPECT_NE(os.str().find("e+09"), std::string::npos);
}

// --------------------------------------------------------------- grid

TEST(Grid, BasicAccess)
{
    util::Grid<int> g(3, 4, 7);
    EXPECT_EQ(g.rows(), 3u);
    EXPECT_EQ(g.cols(), 4u);
    EXPECT_EQ(g.at(2, 3), 7);
    g.at(1, 2) = 42;
    EXPECT_EQ(g(1, 2), 42);
}

TEST(Grid, FillAndEquality)
{
    util::Grid<int> a(2, 2, 0), b(2, 2, 0);
    EXPECT_TRUE(a == b);
    a.fill(5);
    EXPECT_FALSE(a == b);
    b.fill(5);
    EXPECT_TRUE(a == b);
}

TEST(Grid, EmptyGrid)
{
    util::Grid<int> g;
    EXPECT_TRUE(g.empty());
    EXPECT_EQ(g.size(), 0u);
}

// ------------------------------------------------------------ logging

TEST(Logging, LevelGateControlsInform)
{
    auto old = util::setLogLevel(util::LogLevel::Silent);
    // Nothing observable to assert beyond "does not crash"; the
    // level accessor round-trips.
    EXPECT_EQ(util::logLevel(), util::LogLevel::Silent);
    util::setLogLevel(util::LogLevel::Info);
    EXPECT_EQ(util::logLevel(), util::LogLevel::Info);
    util::setLogLevel(old);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ rl_panic("boom ", 42); }, "boom 42");
}

TEST(LoggingDeath, AssertAborts)
{
    EXPECT_DEATH({ rl_assert(1 == 2, "math broke"); }, "math broke");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT({ rl_fatal("bad config"); },
                ::testing::ExitedWithCode(1), "bad config");
}

// --------------------------------------------------------- ThreadPool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    util::ThreadPool pool(4);
    std::vector<std::atomic<int>> touched(257);
    pool.parallelFor(touched.size(),
                     [&](size_t i) { touched[i].fetch_add(1); });
    for (const auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, BodyExceptionReachesCaller)
{
    util::ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](size_t i) {
                             if (i == 17)
                                 throw std::runtime_error("index 17");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, SiblingIndicesStillRunWhenOneThrows)
{
    util::ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(100, [&](size_t i) {
            ran.fetch_add(1);
            if (i == 0)
                throw std::runtime_error("first");
        });
        FAIL() << "expected the body's exception to propagate";
    } catch (const std::runtime_error &) {
    }
    // A throwing body must not strand the rest of the batch.
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, UsableAfterABatchThrew)
{
    util::ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     8, [](size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ExplicitShutdownThenDestructorIsClean)
{
    util::ThreadPool pool(2);
    pool.parallelFor(4, [](size_t) {});
    pool.shutdownAndJoin();
    // Destructor runs next -- it must notice the pool is already down.
}

TEST(ThreadPoolDeath, DoubleExplicitShutdownPanics)
{
    EXPECT_DEATH(
        {
            util::ThreadPool pool(2);
            pool.shutdownAndJoin();
            pool.shutdownAndJoin();
        },
        "already shut down");
}

TEST(ThreadPoolDeath, ParallelForAfterShutdownPanics)
{
    EXPECT_DEATH(
        {
            util::ThreadPool pool(2);
            pool.shutdownAndJoin();
            pool.parallelFor(1, [](size_t) {});
        },
        "shut down");
}

} // namespace
