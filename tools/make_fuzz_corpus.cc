/**
 * make_fuzz_corpus: deterministic wire-payload seed generator.
 *
 * Writes one file per seed into the directory given as argv[1]
 * (default fuzz/corpus/wire).  Seeds are the *payloads* fed to
 * serve::decodeRequest() -- no frame header -- covering every
 * request tag plus truncations and a flipped-tag mutant, so a
 * coverage-guided fuzzer starts from deep inside the decoder instead
 * of rediscovering the format byte by byte.  Run once after a wire
 * format change and commit the output.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "rl/serve/wire.h"

using namespace racelogic;

namespace {

void
writeSeed(const std::string &dir, const std::string &name,
          const std::vector<uint8_t> &payload)
{
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    std::printf("%s (%zu bytes)\n", path.c_str(), payload.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "fuzz/corpus/wire";

    const bio::ScoreMatrix costs = bio::ScoreMatrix::dnaShortestPath();

    writeSeed(dir, "pairwise",
              serve::encodePairwise(1, costs, "ACGT", "AGGT"));
    writeSeed(dir, "affine",
              serve::encodeAffine(2, costs, 2, 1, "ACGTAC", "ACTAC"));
    writeSeed(dir, "screen",
              serve::encodeScreen(3, costs, 4, "ACGT", "ACCT"));
    writeSeed(dir, "dtw",
              serve::encodeDtw(4, {0, 3, 5, 3, 0}, {0, 2, 5, 2}));
    writeSeed(dir, "graph_align",
              serve::encodeGraphAlign(5, "ACTGACTTGATT", 6));
    writeSeed(dir, "map_reads",
              serve::encodeMapReads(6, ">r1\nACTGA\n>r2\nGATT\n", 8));
    writeSeed(dir, "stats", serve::encodeStatsRequest(7));
    writeSeed(dir, "ping", serve::encodePing(8));
    writeSeed(dir, "deadline",
              serve::encodePairwise(9, costs, "ACGT", "AGGT", 250));

    // Structured invalids: the decoder's typed-rejection paths.
    auto truncated = serve::encodePairwise(10, costs, "ACGT", "AGGT");
    truncated.resize(truncated.size() / 2);
    writeSeed(dir, "truncated_pairwise", truncated);

    auto flipped = serve::encodeDtw(11, {1, 2, 3}, {3, 2, 1});
    flipped[4] = 0x7f; // unknown request tag
    writeSeed(dir, "unknown_tag", flipped);

    writeSeed(dir, "header_only", serve::encodePing(12));
    writeSeed(dir, "empty", {});
    return 0;
}
