#!/usr/bin/env python3
"""Generate random variation graphs as GFA v1 for the pangraph workload.

Usage:
    tools/make_gfa.py [--nodes 8] [--min-len 1] [--max-len 8]
                      [--snp 0.3] [--insert 0.15] [--delete 0.15]
                      [--alphabet ACGT] [--seed 0] [--cyclic]
                      [-o out.gfa]

Emits a linear backbone of --nodes segments decorated with SNP
bubbles (two single-base branches), insertion branches (an optional
extra segment), and deletion edges (a link skipping one backbone
segment) at the given densities -- the same shapes
rl/pangraph/generate.h produces in-process for the C++ tests and
bench_graph_align.  Labels are uniform random over --alphabet with
lengths in [--min-len, --max-len] (clamped to the 1..64 nt range the
tests exercise).

--cyclic adds one back link, producing a file the parser must REJECT
(rl/pangraph/gfa.h's cyclic-GFA rejection path) -- useful for
exercising error handling from the command line:

    tools/make_gfa.py --cyclic | ./build/graph_align /dev/stdin reads.fa
"""

import argparse
import random
import sys


def build_graph(args, rng):
    """Return (segments, links): name -> label, and (from, to) pairs."""
    def label():
        n = rng.randint(args.min_len, args.max_len)
        return "".join(rng.choice(args.alphabet) for _ in range(n))

    segments = []  # (name, label) in declaration order
    links = []
    counter = 0

    def add(lbl):
        nonlocal counter
        counter += 1
        name = f"s{counter}"
        segments.append((name, lbl))
        return name

    backbone = [add(label()) for _ in range(args.nodes)]
    for i in range(len(backbone) - 1):
        src, dst = backbone[i], backbone[i + 1]
        roll = rng.random()
        if roll < args.snp:
            ref = rng.choice(args.alphabet)
            alt = rng.choice([c for c in args.alphabet if c != ref])
            a, b = add(ref), add(alt)
            links += [(src, a), (src, b), (a, dst), (b, dst)]
        elif roll < args.snp + args.insert:
            ins = add(label())
            links += [(src, ins), (ins, dst), (src, dst)]
        else:
            links.append((src, dst))
        if i + 2 < len(backbone) and rng.random() < args.delete:
            links.append((src, backbone[i + 2]))

    if args.cyclic:
        # A back link, or a self-link for a single node -- either way
        # the parser must reject the result.
        links.append((backbone[-1], backbone[0]))
    return segments, links


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--nodes", type=int, default=8,
                        help="backbone segments (default 8)")
    parser.add_argument("--min-len", type=int, default=1,
                        help="shortest segment label (default 1)")
    parser.add_argument("--max-len", type=int, default=8,
                        help="longest segment label (default 8)")
    parser.add_argument("--snp", type=float, default=0.3,
                        help="SNP bubble density (default 0.3)")
    parser.add_argument("--insert", type=float, default=0.15,
                        help="insertion branch density (default 0.15)")
    parser.add_argument("--delete", type=float, default=0.15,
                        help="deletion edge density (default 0.15)")
    parser.add_argument("--alphabet", default="ACGT",
                        help="label alphabet (default ACGT)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default 0)")
    parser.add_argument("--cyclic", action="store_true",
                        help="add a back link: the parser must reject "
                             "the result (tests the DAG-only path)")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default stdout)")
    args = parser.parse_args()

    if args.nodes < 1:
        parser.error("--nodes must be >= 1")
    if not (1 <= args.min_len <= args.max_len <= 64):
        parser.error("label lengths must satisfy 1 <= min <= max <= 64")
    if not args.alphabet:
        parser.error("--alphabet must be non-empty")
    if args.snp > 0 and len(set(args.alphabet)) < 2:
        parser.error("SNP bubbles need >= 2 distinct alphabet letters "
                     "(use --snp 0 with a unary alphabet)")

    rng = random.Random(args.seed)
    segments, links = build_graph(args, rng)

    out = open(args.output, "w") if args.output else sys.stdout
    try:
        out.write("H\tVN:Z:1.0\n")
        for name, lbl in segments:
            out.write(f"S\t{name}\t{lbl}\n")
        for src, dst in links:
            out.write(f"L\t{src}\t+\t{dst}\t+\t0M\n")
    finally:
        if args.output:
            out.close()
    print(f"{len(segments)} segments, {len(links)} links"
          + (" (cyclic!)" if args.cyclic else ""), file=sys.stderr)


if __name__ == "__main__":
    main()
