#!/usr/bin/env python3
"""Diff fresh google-benchmark JSON runs against the committed baseline.

Usage:
    tools/bench_compare.py fresh.json [more.json ...]
                           [--baseline BENCH_baseline.json]
                           [--tolerance 0.25] [--metric cpu_time]
                           [--benches name1,name2,...]
    tools/bench_compare.py fresh.json --pair "SUBJECT,REFERENCE"
                           [--tolerance 0.05] [--metric cpu_time]

With --pair, no baseline file is involved: both named benchmarks come
from the SAME fresh run and SUBJECT must stay within the tolerance of
REFERENCE (subject <= reference * (1 + tolerance)).  This gates
same-machine A/B claims -- e.g. that the serve daemon with telemetry
stays within 5% of the no-telemetry build -- without the cross-machine
noise a committed baseline absorbs.

Multiple fresh files are merged (later files win on name clashes), so
CI can feed bench_microbench.json and bench_graph_align.json into one
comparison.

Fails (exit 1) when any named headline benchmark regresses by more
than the tolerance relative to the baseline, i.e. when

    fresh_metric > baseline_metric * (1 + tolerance)

Headline benches are the single-threaded kernel benchmarks whose
cpu_time is comparatively stable across machines; thread-scaling rows
(BM_SolveBatchThreads) are deliberately excluded because they measure
the host's core count as much as the code.  Every headline bench must
exist in BOTH the baseline and the fresh run: a headline row missing
from the baseline fails the comparison just like a regression, so a
PR that adds a bench to the headline set must commit a refreshed
baseline in the same change.  CI passes a larger tolerance than the
default 25% to absorb runner-vs-baseline machine differences.
"""

import argparse
import json
import sys
from pathlib import Path

# The perf trajectory: one representative entry per kernel family.
HEADLINE_BENCHES = [
    "BM_EventDrivenRace/256",       # behavioral race-grid hot path
    "BM_WavefrontKernelDag/256",    # general CSR bucket kernel
    "BM_ScreeningRaceWithHorizon/256",  # Section 6 early termination
    "BM_CompiledSimGrid/64",        # compiled gate-level kernel
    "BM_CompiledSim64Lane/64",      # bit-parallel gate-level batch
    "BM_ApiEngineSolveCached/256",  # facade overhead on the hot path
    "BM_GraphAlignRace/64",         # graph-align hot path (fused)
    "BM_GraphAlignFused/64",        # steady-state fused sweep, scratch reuse
    # Engine read-mapping batch, one worker (single-threaded like the
    # rest of the headline set; real_time because pool workers race).
    "BM_GraphMapReadsBatch/1/real_time",
    # End-to-end serve daemon under a saturating pipelined client:
    # wire decode + admission + shard dispatch + solve + reply.
    # real_time because the work crosses daemon threads.
    "BM_ServeSaturation/64/real_time",
    # The same daemon at 2x overload with a mixed-priority client:
    # weighted drain + shed-lowest-first admission must not slow the
    # serving path (per-class p99 and shed counts ride as counters).
    "BM_ServeMixedPriority/64/real_time",
]


def load_benchmarks(path):
    with open(path) as handle:
        data = json.load(handle)
    return {bench["name"]: bench for bench in data.get("benchmarks", [])}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("fresh", nargs="+",
                        help="fresh --benchmark_format=json run(s); "
                             "merged in order")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_baseline.json"),
        help="committed baseline JSON (default: repo root)")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression (default 0.25 = +25%%)")
    parser.add_argument(
        "--metric", default="cpu_time",
        help="benchmark field to compare (default cpu_time)")
    parser.add_argument(
        "--benches", default=None,
        help="comma-separated bench names overriding the headline set")
    parser.add_argument(
        "--pair", default=None, metavar="SUBJECT,REFERENCE",
        help="compare two benchmarks within the fresh run instead of "
             "against the baseline: SUBJECT must stay within the "
             "tolerance of REFERENCE")
    args = parser.parse_args()

    fresh = {}
    for path in args.fresh:
        fresh.update(load_benchmarks(path))

    if args.pair:
        try:
            subject_name, reference_name = args.pair.split(",")
        except ValueError:
            print("--pair wants exactly 'SUBJECT,REFERENCE'",
                  file=sys.stderr)
            return 2
        subject = fresh.get(subject_name)
        reference = fresh.get(reference_name)
        for name, row in ((subject_name, subject),
                          (reference_name, reference)):
            if row is None:
                print(f"--pair bench missing from fresh run: {name}",
                      file=sys.stderr)
                return 1
        ratio = subject[args.metric] / reference[args.metric]
        ok = ratio <= 1.0 + args.tolerance
        print(f"{subject_name}: {subject[args.metric]:.0f}  vs  "
              f"{reference_name}: {reference[args.metric]:.0f}  "
              f"ratio {ratio:.3f}  "
              f"({'ok' if ok else 'REGRESSED'}, "
              f"tolerance +{args.tolerance:.0%})")
        if not ok:
            print(f"\n{subject_name} exceeds {reference_name} by more "
                  f"than +{args.tolerance:.0%}", file=sys.stderr)
            return 1
        return 0

    names = (args.benches.split(",") if args.benches
             else HEADLINE_BENCHES)
    baseline = load_benchmarks(args.baseline)

    width = max(len(name) for name in names)
    regressions = []
    missing = []
    unbaselined = []
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  "
          f"{'ratio':>7}  verdict")
    for name in names:
        base = baseline.get(name)
        got = fresh.get(name)
        if base is None:
            print(f"{name:<{width}}  {'-':>12}  "
                  f"{got[args.metric] if got else '-':>12}  {'-':>7}  "
                  "MISSING from baseline")
            unbaselined.append(name)
            continue
        if got is None:
            print(f"{name:<{width}}  {base[args.metric]:>12.0f}  "
                  f"{'-':>12}  {'-':>7}  MISSING from fresh run")
            missing.append(name)
            continue
        ratio = got[args.metric] / base[args.metric]
        regressed = ratio > 1.0 + args.tolerance
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{name:<{width}}  {base[args.metric]:>12.0f}  "
              f"{got[args.metric]:>12.0f}  {ratio:>7.2f}  {verdict}")
        if regressed:
            regressions.append((name, ratio))

    if unbaselined:
        print(f"\n{len(unbaselined)} headline bench(es) missing from "
              "the baseline -- regenerate BENCH_baseline.json in the "
              "PR that adds a headline bench", file=sys.stderr)
        return 1
    if missing:
        print(f"\n{len(missing)} headline bench(es) missing from the "
              "fresh run", file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} headline regression(s) beyond "
              f"+{args.tolerance:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return 1
    print(f"\nAll headline benches within +{args.tolerance:.0%} of "
          "baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
