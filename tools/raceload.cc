/**
 * raceload: load generator / saturation probe for raceserved.
 *
 * Opens one pipelined connection, keeps up to --window requests
 * outstanding, and reports client-side latency percentiles,
 * throughput, and the admission-control verdict mix.  On a 1-CPU
 * host the interesting output is the daemon-side counters fetched at
 * the end (queue high-water, shard hits vs. build locks) -- see
 * docs/performance.md.
 *
 * Connect and reconnect time is measured apart from serve latency:
 * the per-request clock starts at (re)submit, after any reconnect
 * completed, so transport repair cost never pollutes the serving
 * percentiles and is reported on its own line instead.
 *
 *   raceload --unix /tmp/rl.sock --requests 200 --window 8
 *   raceload --tcp 7411 --mode mixed --expect-no-rejections
 *   raceload --tcp 7411 --dump-histograms --expect-metrics
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "rl/serve/client.h"
#include "rl/telemetry/registry.h"

using namespace racelogic;
using Clock = std::chrono::steady_clock;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--unix PATH | --tcp PORT) [options]\n"
        "\n"
        "  --requests N            requests to send (default 200)\n"
        "  --window N              max outstanding requests (default 8)\n"
        "  --len N                 sequence length (default 64)\n"
        "  --mode M                pairwise | screen | dtw | graph | mixed\n"
        "                          (default pairwise; graph needs a\n"
        "                          daemon started with --gfa)\n"
        "  --threshold T           screen/graph threshold (default 2*len)\n"
        "  --priority P            batch | normal | interactive | mixed\n"
        "                          (default normal; mixed cycles the\n"
        "                          three classes request by request and\n"
        "                          reports per-class columns)\n"
        "  --seed N                RNG seed (default 42)\n"
        "  --timeout-ms MS         per-request deadline: rides the wire\n"
        "                          (the daemon sheds/cancels expired\n"
        "                          work) and bounds the client-side wait\n"
        "                          (default 0 = none)\n"
        "  --retries N             resubmits after a client-side timeout\n"
        "                          or disconnect (default 0)\n"
        "  --expect-no-rejections  exit 1 unless every request was Ok\n"
        "                          (client-side timeouts count too)\n"
        "  --expect-interactive-clean\n"
        "                          exit 1 if any interactive-class\n"
        "                          request was rejected or timed out --\n"
        "                          the overload contract says only\n"
        "                          lower classes shed\n"
        "  --dump-histograms       print client-side log2 histograms of\n"
        "                          serve latency and connect/retry time\n"
        "                          (p50/p90/p99/p999)\n"
        "  --expect-metrics        scrape the daemon's Metrics frame at\n"
        "                          the end; exit 1 unless it shows\n"
        "                          served requests and latency samples\n",
        argv0);
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string unixPath;
    int tcpPort = -1;
    size_t requests = 200;
    size_t window = 8;
    size_t len = 64;
    std::string mode = "pairwise";
    std::string priorityMode = "normal";
    long long threshold = -1;
    unsigned seed = 42;
    long long timeoutMs = 0;
    int retries = 0;
    bool expectNoRejections = false;
    bool expectInteractiveClean = false;
    bool dumpHistograms = false;
    bool expectMetrics = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            unixPath = value();
        } else if (arg == "--tcp") {
            tcpPort = std::atoi(value());
        } else if (arg == "--requests") {
            requests = static_cast<size_t>(std::atol(value()));
        } else if (arg == "--window") {
            window = static_cast<size_t>(std::atol(value()));
        } else if (arg == "--len") {
            len = static_cast<size_t>(std::atol(value()));
        } else if (arg == "--mode") {
            mode = value();
        } else if (arg == "--threshold") {
            threshold = std::atoll(value());
        } else if (arg == "--priority") {
            priorityMode = value();
        } else if (arg == "--seed") {
            seed = static_cast<unsigned>(std::atol(value()));
        } else if (arg == "--timeout-ms") {
            timeoutMs = std::atoll(value());
        } else if (arg == "--retries") {
            retries = std::atoi(value());
        } else if (arg == "--expect-no-rejections") {
            expectNoRejections = true;
        } else if (arg == "--expect-interactive-clean") {
            expectInteractiveClean = true;
        } else if (arg == "--dump-histograms") {
            dumpHistograms = true;
        } else if (arg == "--expect-metrics") {
            expectMetrics = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if ((unixPath.empty() && tcpPort < 0) || requests == 0 ||
        window == 0) {
        usage(argv[0]);
        return 2;
    }
    if (threshold < 0)
        threshold = static_cast<long long>(2 * len);
    if (priorityMode != "batch" && priorityMode != "normal" &&
        priorityMode != "interactive" && priorityMode != "mixed") {
        std::fprintf(stderr, "raceload: unknown priority '%s'\n",
                     priorityMode.c_str());
        return 2;
    }
    // Deterministic in the request id so a retried request keeps its
    // class, and response accounting can recompute it.
    auto priorityFor = [&](uint32_t id) {
        if (priorityMode == "batch")
            return serve::Priority::Batch;
        if (priorityMode == "interactive")
            return serve::Priority::Interactive;
        if (priorityMode == "mixed")
            return static_cast<serve::Priority>(id % 3);
        return serve::Priority::Normal;
    };

    // Client-side telemetry: serve latency and connect/retry time go
    // into *separate* histograms so transport repair cost (reconnect
    // + resubmit) never leaks into the serving percentiles.
    telemetry::Registry registry;
    telemetry::Histogram *latencyHist =
        registry.addHistogram("raceload_request_us").valueOrFatal();
    telemetry::Histogram *connectHist =
        registry.addHistogram("raceload_connect_us").valueOrFatal();

    const int64_t connectMs = timeoutMs > 0 ? timeoutMs : -1;
    const Clock::time_point connectBegin = Clock::now();
    serve::ServeClient client =
        unixPath.empty()
            ? serve::ServeClient::overTcp(static_cast<uint16_t>(tcpPort),
                                          connectMs)
            : serve::ServeClient::overUnix(unixPath, connectMs);
    connectHist->record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - connectBegin)
            .count()));
    if (!client.ok()) {
        std::perror("raceload: connect failed");
        return 1;
    }
    auto timedReconnect = [&]() {
        const Clock::time_point t0 = Clock::now();
        const bool ok = client.reconnect(timeoutMs > 0 ? timeoutMs : -1);
        connectHist->record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count()));
        return ok;
    };

    const bio::Alphabet dna("ACGT");
    // Fig. 2b: match 1, mismatch 2, indel 1 -- race-ready weights.
    const bio::ScoreMatrix costs = bio::ScoreMatrix::dnaShortestPath();
    std::mt19937 rng(seed);
    auto randSeq = [&](size_t n) {
        static const char letters[] = "ACGT";
        std::string s;
        s.reserve(n);
        std::uniform_int_distribution<int> pick(0, 3);
        for (size_t i = 0; i < n; ++i)
            s.push_back(letters[pick(rng)]);
        return s;
    };
    auto randSignal = [&](size_t n) {
        std::vector<apps::Sample> s(n);
        std::uniform_int_distribution<int> pick(0, 31);
        for (apps::Sample &v : s)
            v = pick(rng);
        return s;
    };

    const uint32_t wireDeadlineMs =
        timeoutMs > 0 ? static_cast<uint32_t>(timeoutMs) : 0;
    auto submit = [&](uint32_t id) {
        const serve::Priority prio = priorityFor(id);
        std::string pickMode = mode;
        if (mode == "mixed") {
            static const char *kinds[] = {"pairwise", "screen", "dtw"};
            pickMode = kinds[id % 3];
        }
        if (pickMode == "pairwise")
            return client.submitPairwise(id, costs, randSeq(len),
                                         randSeq(len), wireDeadlineMs,
                                         prio);
        if (pickMode == "screen")
            return client.submitScreen(id, costs, threshold, randSeq(len),
                                       randSeq(len), wireDeadlineMs,
                                       prio);
        if (pickMode == "dtw")
            return client.submitDtw(id, randSignal(len), randSignal(len),
                                    wireDeadlineMs, prio);
        if (pickMode == "graph")
            return client.submitGraphAlign(id, randSeq(len), threshold,
                                           wireDeadlineMs, prio);
        std::fprintf(stderr, "raceload: unknown mode '%s'\n",
                     mode.c_str());
        std::exit(2);
    };

    std::unordered_map<uint32_t, Clock::time_point> pending;
    std::unordered_map<uint32_t, int> attempts;
    std::vector<double> latenciesUs;
    latenciesUs.reserve(requests);
    uint64_t okCount = 0, rejectedByStatus[7] = {0, 0, 0, 0, 0, 0, 0};
    uint64_t timeouts = 0, retriesUsed = 0;
    // Per-class ledgers, indexed by serve::Priority.
    uint64_t okByClass[serve::kPriorityClasses] = {0, 0, 0};
    uint64_t rejectedByClass[serve::kPriorityClasses] = {0, 0, 0};
    uint64_t timeoutsByClass[serve::kPriorityClasses] = {0, 0, 0};
    std::vector<double> latenciesByClass[serve::kPriorityClasses];

    const Clock::time_point begin = Clock::now();
    uint32_t nextId = 1;
    size_t sent = 0, resolved = 0;
    while (resolved < requests) {
        while (sent < requests && pending.size() < window) {
            const uint32_t id = nextId++;
            if (!submit(id)) {
                std::fprintf(stderr, "raceload: send failed\n");
                return 1;
            }
            pending.emplace(id, Clock::now());
            ++sent;
        }
        serve::Response response;
        const serve::IoStatus got = client.receive(
            response,
            serve::deadlineAfterMs(timeoutMs > 0 ? timeoutMs : -1));
        if (got != serve::IoStatus::Ok) {
            if (got != serve::IoStatus::Timeout && retries == 0) {
                std::fprintf(stderr, "raceload: daemon disconnected\n");
                return 1;
            }
            // A receive timeout (or disconnect, when retrying) puts
            // every outstanding request in limbo, and the old
            // connection's framing with it: resubmit what still has
            // retries on a fresh connection, fail the rest as
            // timeouts.
            std::vector<uint32_t> limbo;
            limbo.reserve(pending.size());
            for (const auto &entry : pending)
                limbo.push_back(entry.first);
            std::sort(limbo.begin(), limbo.end());
            std::vector<uint32_t> resubmit;
            for (uint32_t id : limbo) {
                if (attempts[id] < retries) {
                    resubmit.push_back(id);
                } else {
                    pending.erase(id);
                    ++timeouts;
                    ++timeoutsByClass[static_cast<size_t>(
                        priorityFor(id))];
                    ++resolved;
                }
            }
            if (resolved >= requests && resubmit.empty())
                break;
            if (!timedReconnect()) {
                std::fprintf(stderr, "raceload: reconnect failed\n");
                return 1;
            }
            for (uint32_t id : resubmit) {
                ++attempts[id];
                ++retriesUsed;
                if (!submit(id)) {
                    std::fprintf(stderr, "raceload: resend failed\n");
                    return 1;
                }
                pending[id] = Clock::now();
            }
            continue;
        }
        auto it = pending.find(response.id);
        if (it == pending.end()) {
            std::fprintf(stderr, "raceload: unsolicited response id %u\n",
                         response.id);
            return 1;
        }
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      it->second)
                .count();
        pending.erase(it);
        latenciesUs.push_back(us);
        latencyHist->record(static_cast<uint64_t>(us));
        ++resolved;
        const size_t cls =
            static_cast<size_t>(priorityFor(response.id));
        latenciesByClass[cls].push_back(us);
        if (response.status == serve::Status::Ok) {
            ++okCount;
            ++okByClass[cls];
        } else {
            ++rejectedByStatus[static_cast<uint8_t>(response.status)];
            ++rejectedByClass[cls];
        }
    }
    const double elapsedSec =
        std::chrono::duration<double>(Clock::now() - begin).count();

    std::sort(latenciesUs.begin(), latenciesUs.end());
    const uint64_t rejected = requests - okCount;
    std::printf("raceload: %zu requests in %.3f s (%.1f req/s)\n",
                requests, elapsedSec,
                static_cast<double>(requests) / elapsedSec);
    if (!latenciesUs.empty())
        std::printf(
            "raceload: latency p50=%.1f us  p99=%.1f us  max=%.1f us\n",
            percentile(latenciesUs, 50), percentile(latenciesUs, 99),
            latenciesUs.back());
    std::printf("raceload: ok=%llu rejected=%llu (%.2f%%)"
                " [queue-full=%llu oversized=%llu bad=%llu shutdown=%llu"
                " deadline=%llu resource=%llu timeout=%llu"
                " retries=%llu]\n",
                static_cast<unsigned long long>(okCount),
                static_cast<unsigned long long>(rejected),
                100.0 * static_cast<double>(rejected) /
                    static_cast<double>(requests),
                static_cast<unsigned long long>(rejectedByStatus[1]),
                static_cast<unsigned long long>(rejectedByStatus[2]),
                static_cast<unsigned long long>(rejectedByStatus[3]),
                static_cast<unsigned long long>(rejectedByStatus[4]),
                static_cast<unsigned long long>(rejectedByStatus[5]),
                static_cast<unsigned long long>(rejectedByStatus[6]),
                static_cast<unsigned long long>(timeouts),
                static_cast<unsigned long long>(retriesUsed));

    static const char *const kClassName[serve::kPriorityClasses] = {
        "batch", "normal", "interactive"};
    if (priorityMode == "mixed") {
        for (size_t c = 0; c < serve::kPriorityClasses; ++c) {
            std::vector<double> &lat = latenciesByClass[c];
            std::sort(lat.begin(), lat.end());
            std::printf("raceload: class %-11s ok=%llu rejected=%llu "
                        "timeout=%llu p50=%.1f us p99=%.1f us\n",
                        kClassName[c],
                        static_cast<unsigned long long>(okByClass[c]),
                        static_cast<unsigned long long>(
                            rejectedByClass[c]),
                        static_cast<unsigned long long>(
                            timeoutsByClass[c]),
                        percentile(lat, 50), percentile(lat, 99));
        }
    }

    if (dumpHistograms) {
        const telemetry::Snapshot snap = registry.snapshot();
        for (const telemetry::HistogramSnapshot &h : snap.histograms) {
            std::printf("raceload: %s count=%llu p50=%.1f p90=%.1f "
                        "p99=%.1f p999=%.1f\n",
                        h.name.c_str(),
                        static_cast<unsigned long long>(h.count),
                        h.percentile(50), h.percentile(90),
                        h.percentile(99), h.percentile(99.9));
        }
    }

    // The daemon-side ledger: admission counters and the shard
    // hit/build-lock split (the 1-CPU scaling evidence).
    if (!client.ok())
        timedReconnect();
    if (client.submitStats(0)) {
        serve::Response stats;
        if (client.receive(stats) && stats.queueStats) {
            const serve::QueueStatsWire &q = *stats.queueStats;
            std::printf("raceload: daemon enqueued=%llu completed=%llu "
                        "rejected=%llu shed-deadline=%llu "
                        "shed-evicted=%llu high-water=%llu\n",
                        static_cast<unsigned long long>(q.enqueued),
                        static_cast<unsigned long long>(q.completed),
                        static_cast<unsigned long long>(
                            q.rejectedQueueFull + q.rejectedOversized +
                            q.rejectedBadRequest + q.rejectedResource +
                            q.rejectedShutdown),
                        static_cast<unsigned long long>(q.shedDeadline),
                        static_cast<unsigned long long>(q.shedEvicted),
                        static_cast<unsigned long long>(q.highWater));
            for (size_t c = 0; c < serve::kPriorityClasses; ++c) {
                const serve::ClassStatsWire &cw = q.classes[c];
                std::printf(
                    "raceload: daemon class %-11s enqueued=%llu "
                    "completed=%llu rejected-full=%llu "
                    "rejected-resource=%llu shed-deadline=%llu "
                    "shed-evicted=%llu\n",
                    kClassName[c],
                    static_cast<unsigned long long>(cw.enqueued),
                    static_cast<unsigned long long>(cw.completed),
                    static_cast<unsigned long long>(cw.rejectedQueueFull),
                    static_cast<unsigned long long>(cw.rejectedResource),
                    static_cast<unsigned long long>(cw.shedDeadline),
                    static_cast<unsigned long long>(cw.shedEvicted));
            }
            size_t shard = 0;
            for (const serve::ShardStatsWire &s : stats.shardStats)
                std::printf("raceload: shard %zu solves=%llu "
                            "shard-hits=%llu build-locks=%llu\n",
                            shard++,
                            static_cast<unsigned long long>(s.solves),
                            static_cast<unsigned long long>(s.shardHits),
                            static_cast<unsigned long long>(s.buildLocks));
        }
    }

    // The daemon's own telemetry, over the wire: after a load run the
    // served-request counter and the end-to-end latency histogram
    // must both have moved, or the observability plumbing is broken.
    if (expectMetrics) {
        if (!client.ok() && !timedReconnect()) {
            std::fprintf(stderr,
                         "raceload: FAIL -- cannot scrape metrics\n");
            return 1;
        }
        serve::Response metrics;
        if (!client.submitMetrics(0) || !client.receive(metrics) ||
            metrics.status != serve::Status::Ok ||
            !metrics.metrics.has_value()) {
            std::fprintf(stderr,
                         "raceload: FAIL -- Metrics scrape failed\n");
            return 1;
        }
        const telemetry::Snapshot &snap = *metrics.metrics;
        const telemetry::CounterSnapshot *served =
            snap.counter("rl_serve_requests_total");
        const telemetry::HistogramSnapshot *e2e =
            snap.histogram("rl_serve_request_us");
        if (!served || served->value == 0) {
            std::fprintf(stderr, "raceload: FAIL -- daemon served us "
                                 "but rl_serve_requests_total is %s\n",
                         served ? "zero" : "absent");
            return 1;
        }
        if (!e2e || e2e->count == 0) {
            std::fprintf(stderr, "raceload: FAIL -- rl_serve_request_us "
                                 "has %s samples\n",
                         e2e ? "zero" : "no");
            return 1;
        }
        std::printf("raceload: daemon metrics ok -- requests=%llu "
                    "latency-samples=%llu p99=%.1f us\n",
                    static_cast<unsigned long long>(served->value),
                    static_cast<unsigned long long>(e2e->count),
                    e2e->percentile(99));
    }

    if (expectNoRejections && rejected != 0) {
        std::fprintf(stderr,
                     "raceload: FAIL -- %llu rejections, none expected\n",
                     static_cast<unsigned long long>(rejected));
        return 1;
    }
    if (expectInteractiveClean) {
        const size_t cls =
            static_cast<size_t>(serve::Priority::Interactive);
        const uint64_t dirty =
            rejectedByClass[cls] + timeoutsByClass[cls];
        if (dirty != 0) {
            std::fprintf(stderr,
                         "raceload: FAIL -- %llu interactive requests "
                         "rejected/timed out; overload must shed lower "
                         "classes first\n",
                         static_cast<unsigned long long>(dirty));
            return 1;
        }
    }
    return 0;
}
