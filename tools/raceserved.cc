/**
 * raceserved: the racelogic::serve alignment daemon.
 *
 * Listens on a Unix-domain socket and/or loopback TCP, optionally
 * preloads a pangenome (GFA) for GraphAlign/MapReads requests, and
 * serves the length-prefixed binary protocol (src/rl/serve/wire.h).
 * SIGTERM/SIGINT triggers a clean drain: every admitted request
 * finishes and flushes its response before the process exits 0.
 * SIGUSR1 dumps the full telemetry snapshot (Prometheus text) to
 * stderr without disturbing service; --metrics-dump prints the same
 * exposition once more after the final drain.  SIGHUP re-reads the
 * --gfa file and hot-swaps the served graph with zero downtime:
 * in-flight solves finish against the old graph, and a reload that
 * fails to parse or compile leaves the old graph serving.
 *
 *   raceserved --unix /tmp/rl.sock --gfa examples/data/bubbles.gfa
 *   raceserved --tcp 0 --workers 4 --depth 64 --metrics-dump
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "rl/pangraph/gfa.h"
#include "rl/serve/server.h"

using namespace racelogic;

namespace {

volatile std::sig_atomic_t gStopRequested = 0;
volatile std::sig_atomic_t gDumpRequested = 0;
volatile std::sig_atomic_t gReloadRequested = 0;

void
onSignal(int)
{
    gStopRequested = 1;
}

void
onDumpSignal(int)
{
    gDumpRequested = 1;
}

void
onReloadSignal(int)
{
    gReloadRequested = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--unix PATH] [--tcp PORT] [--gfa FILE]\n"
        "          [--alphabet LETTERS] [--workers N] [--depth N]\n"
        "          [--brownout-depth N] [--mem-budget-mb MB]\n"
        "          [--threshold T] [--max-product-states N]\n"
        "          [--idle-timeout-ms MS] [--io-timeout-ms MS]\n"
        "          [--slow-ms MS] [--no-telemetry] [--metrics-dump]\n"
        "          [--quiet]\n"
        "\n"
        "  --unix PATH       listen on a Unix-domain socket\n"
        "  --tcp PORT        listen on loopback TCP (0 = ephemeral;\n"
        "                    the bound port is printed on stdout)\n"
        "  --gfa FILE        preload a pangenome for GraphAlign/MapReads\n"
        "  --alphabet L      graph alphabet letters (default ACGT)\n"
        "  --workers N       engine shards / worker threads (default 4)\n"
        "  --depth N         admission bound on outstanding requests\n"
        "                    (default 64)\n"
        "  --brownout-depth N\n"
        "                    admission bound while browned out\n"
        "                    (default 0 = half of --depth)\n"
        "  --mem-budget-mb MB\n"
        "                    daemon-wide memory budget over plan caches\n"
        "                    and kernel scratch; crossing it latches a\n"
        "                    brownout (shed batch work, shrink scratch,\n"
        "                    evict plans) until usage drops back under\n"
        "                    3/4 of the budget (default 0 = unlimited)\n"
        "  --threshold T     engine-wide Section 6 screen threshold\n"
        "  --max-product-states N\n"
        "                    reject GraphAlign/MapReads whose read x\n"
        "                    graph product exceeds N states with a\n"
        "                    typed resource-exhausted reply\n"
        "                    (default 0 = kernel id-space bound only)\n"
        "  --idle-timeout-ms MS\n"
        "                    hang up on connections idle between\n"
        "                    requests for MS ms (default 0 = never)\n"
        "  --io-timeout-ms MS\n"
        "                    sever peers that stall mid-frame or stop\n"
        "                    reading responses (default 10000; 0 = never)\n"
        "  --slow-ms MS      log any request whose end-to-end latency\n"
        "                    reaches MS ms, with its stage breakdown\n"
        "                    (default 0 = off)\n"
        "  --no-telemetry    skip metric registration entirely (the\n"
        "                    Metrics request still answers with the\n"
        "                    queue/shard series)\n"
        "  --metrics-dump    print the Prometheus-text telemetry\n"
        "                    snapshot to stderr after the final drain;\n"
        "                    SIGUSR1 prints one at any time while\n"
        "                    serving\n"
        "  --quiet           suppress the final stats report\n"
        "\n"
        "signals: SIGTERM/SIGINT drain and exit 0; SIGUSR1 dumps the\n"
        "telemetry snapshot to stderr; SIGHUP re-reads the --gfa file\n"
        "and hot-swaps the served graph (in-flight solves finish on\n"
        "the old graph; a failed reload keeps the old graph serving)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerConfig cfg;
    std::string gfaPath;
    std::string alphabetLetters = "ACGT";
    bool quiet = false;
    bool metricsDump = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            cfg.unixPath = value();
        } else if (arg == "--tcp") {
            cfg.tcpPort = std::atoi(value());
        } else if (arg == "--gfa") {
            gfaPath = value();
        } else if (arg == "--alphabet") {
            alphabetLetters = value();
        } else if (arg == "--workers") {
            cfg.workers = static_cast<size_t>(std::atol(value()));
        } else if (arg == "--depth") {
            cfg.queueDepth = static_cast<size_t>(std::atol(value()));
        } else if (arg == "--brownout-depth") {
            cfg.brownoutDepth = static_cast<size_t>(std::atol(value()));
        } else if (arg == "--mem-budget-mb") {
            cfg.memBudgetBytes =
                static_cast<size_t>(std::atoll(value())) * 1024 * 1024;
        } else if (arg == "--threshold") {
            cfg.engine.threshold = std::atoll(value());
        } else if (arg == "--max-product-states") {
            cfg.engine.maxProductStates =
                static_cast<uint64_t>(std::atoll(value()));
        } else if (arg == "--idle-timeout-ms") {
            cfg.idleTimeoutMs = std::atoll(value());
        } else if (arg == "--io-timeout-ms") {
            cfg.ioTimeoutMs = std::atoll(value());
        } else if (arg == "--slow-ms") {
            cfg.slowMs = std::atoll(value());
        } else if (arg == "--no-telemetry") {
            cfg.telemetry = false;
        } else if (arg == "--metrics-dump") {
            metricsDump = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (cfg.unixPath.empty() && cfg.tcpPort < 0) {
        std::fprintf(stderr, "%s: need --unix and/or --tcp\n", argv[0]);
        usage(argv[0]);
        return 2;
    }

    if (!gfaPath.empty()) {
        bio::Alphabet alphabet(alphabetLetters);
        auto graph = std::make_shared<pangraph::VariationGraph>(
            pangraph::readGfaFile(gfaPath, alphabet));
        // Fig. 2b weights generalized to any alphabet: race-ready
        // (minimum finite weight 1, as the grid kernel requires).
        bio::ScoreMatrix costs(alphabet, bio::ScoreKind::Cost);
        for (bio::Symbol a = 0; a < alphabet.size(); ++a)
            for (bio::Symbol b = 0; b < alphabet.size(); ++b)
                costs.setPair(a, b, a == b ? 1 : 2);
        costs.setAllGaps(1);
        cfg.graphMatrix = std::move(costs);
        cfg.graph = std::move(graph);
    }

    // Estimates are a measurement-run luxury the serving hot path
    // does not want to price on every request.
    cfg.engine.withEstimates = false;

    serve::AlignServer server(std::move(cfg));
    if (!server.start()) {
        std::perror("raceserved: failed to bind listener");
        return 1;
    }
    if (server.port() != 0) {
        std::printf("%u\n", static_cast<unsigned>(server.port()));
        std::fflush(stdout);
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGUSR1, onDumpSignal);
    std::signal(SIGHUP, onReloadSignal);
    while (!gStopRequested) {
        ::pause(); // signals are the only way out
        if (gDumpRequested) {
            gDumpRequested = 0;
            const std::string text =
                server.metricsSnapshot().renderPrometheus();
            std::fwrite(text.data(), 1, text.size(), stderr);
            std::fflush(stderr);
        }
        if (gReloadRequested) {
            gReloadRequested = 0;
            // Zero-downtime swap: parse + compile happen here, on the
            // signal-dispatch thread, while workers keep racing on the
            // old graph.  Any failure -- no --gfa, a broken file, an
            // alphabet change -- is logged and the old graph keeps
            // serving.
            if (gfaPath.empty()) {
                std::fprintf(stderr,
                             "raceserved: SIGHUP ignored, no --gfa to "
                             "reload\n");
            } else {
                bio::Alphabet alphabet(alphabetLetters);
                Expected<pangraph::VariationGraph> parsed =
                    pangraph::tryReadGfaFile(gfaPath, alphabet);
                Status status =
                    parsed.ok()
                        ? server.reloadGraph(
                              std::make_shared<pangraph::VariationGraph>(
                                  std::move(parsed.value())))
                        : parsed.status();
                if (status.ok()) {
                    std::fprintf(stderr,
                                 "raceserved: reloaded %s (version "
                                 "%llu)\n",
                                 gfaPath.c_str(),
                                 static_cast<unsigned long long>(
                                     server.graphVersion()));
                } else {
                    std::fprintf(stderr,
                                 "raceserved: reload failed, old graph "
                                 "keeps serving: %s\n",
                                 status.toString().c_str());
                }
            }
        }
    }

    server.stop(); // drain: admitted requests finish and flush

    if (metricsDump) {
        const std::string text =
            server.metricsSnapshot().renderPrometheus();
        std::fwrite(text.data(), 1, text.size(), stderr);
        std::fflush(stderr);
    }

    if (!quiet) {
        const serve::QueueStats q = server.queueStats();
        std::fprintf(stderr,
                     "raceserved: enqueued=%llu completed=%llu "
                     "rejected=%llu (full=%llu oversized=%llu bad=%llu "
                     "resource=%llu shutdown=%llu) shed-deadline=%llu "
                     "shed-evicted=%llu high-water=%llu\n",
                     static_cast<unsigned long long>(q.enqueued),
                     static_cast<unsigned long long>(q.completed),
                     static_cast<unsigned long long>(q.rejected()),
                     static_cast<unsigned long long>(q.rejectedQueueFull),
                     static_cast<unsigned long long>(q.rejectedOversized),
                     static_cast<unsigned long long>(q.rejectedBadRequest),
                     static_cast<unsigned long long>(q.rejectedResource),
                     static_cast<unsigned long long>(q.rejectedShutdown),
                     static_cast<unsigned long long>(q.shedDeadline),
                     static_cast<unsigned long long>(q.shedEvicted),
                     static_cast<unsigned long long>(q.highWater));
        size_t shard = 0;
        for (const serve::ShardStatsWire &s : server.shardStats()) {
            std::fprintf(stderr,
                         "raceserved: shard %zu solves=%llu "
                         "shard-hits=%llu build-locks=%llu\n",
                         shard++,
                         static_cast<unsigned long long>(s.solves),
                         static_cast<unsigned long long>(s.shardHits),
                         static_cast<unsigned long long>(s.buildLocks));
        }
    }
    return 0;
}
