/** libFuzzer target: FASTA parsing (see fuzz/harness.h). */

#include "fuzz/harness.h"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    return racelogic::fuzz::fastaInput(data, size);
}
