#include "fuzz/harness.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "rl/api/api.h"
#include "rl/bio/fasta.h"
#include "rl/pangraph/alignment_graph.h"
#include "rl/pangraph/gfa.h"
#include "rl/serve/wire.h"

namespace racelogic::fuzz {

namespace {

[[noreturn]] void
violated(const char *property, const std::string &detail)
{
    std::fprintf(stderr, "fuzz harness: %s violated: %s\n", property,
                 detail.c_str());
    std::abort();
}

/** The preloaded pangenome a fuzzed daemon would serve: a SNP bubble
 *  plus an insertion bubble, with the Fig. 2b race-ready matrix. */
struct GraphContext {
    std::shared_ptr<const pangraph::VariationGraph> graph;
    bio::ScoreMatrix matrix;
};

const GraphContext &
graphContext()
{
    static const GraphContext ctx = [] {
        auto g = std::make_shared<pangraph::VariationGraph>(
            bio::Alphabet::dna());
        const bio::Alphabet &dna = bio::Alphabet::dna();
        auto seg = [&](const char *name, const char *label) {
            return g->addSegment(name, bio::Sequence(dna, label));
        };
        auto s1 = seg("s1", "ACTGA");
        auto sA = seg("snpA", "C");
        auto sB = seg("snpB", "G");
        auto s2 = seg("s2", "TT");
        auto ins = seg("ins", "AC");
        auto s3 = seg("s3", "GATT");
        g->addLink(s1, sA);
        g->addLink(s1, sB);
        g->addLink(sA, s2);
        g->addLink(sB, s2);
        g->addLink(s2, ins);
        g->addLink(s2, s3);
        g->addLink(ins, s3);
        return GraphContext{std::move(g),
                            bio::ScoreMatrix::dnaShortestPath()};
    }();
    return ctx;
}

} // namespace

int
gfaInput(const uint8_t *data, size_t size)
{
    std::istringstream in(
        std::string(reinterpret_cast<const char *>(data), size));
    auto graph = pangraph::tryReadGfa(in, bio::Alphabet::dna());
    if (!graph.ok())
        return 0;
    // Parser promise: an accepted graph is valid (non-empty, acyclic,
    // sourced and sinked) ...
    if (racelogic::Status valid = graph.value().checkValid();
        !valid.ok())
        violated("tryReadGfa acceptance", valid.message());
    // ... and compiles against a race-ready matrix of its alphabet
    // without tripping any plan-time fatal.
    auto compiled = pangraph::tryCompileGraph(
        graph.value(), bio::ScoreMatrix::dnaShortestPath());
    if (!compiled.ok())
        violated("tryCompileGraph on an accepted GFA",
                 compiled.status().message());
    return 0;
}

int
fastaInput(const uint8_t *data, size_t size)
{
    bio::FastaLimits limits;
    limits.maxSequenceLength = serve::kMaxWireSequence;
    auto records = bio::tryReadFasta(
        std::string(reinterpret_cast<const char *>(data), size),
        bio::Alphabet::dna(), limits);
    if (!records.ok())
        return 0;
    // Parser promise: no accepted record is empty (the reader calls
    // such files corrupted, so it must never hand one back).
    for (const bio::FastaRecord &record : records.value())
        if (record.sequence.empty())
            violated("tryReadFasta acceptance",
                     "empty record '" + record.description + "'");
    return 0;
}

int
wireInput(const uint8_t *data, size_t size)
{
    const GraphContext &ctx = graphContext();
    std::vector<uint8_t> payload(data, data + size);

    serve::Request request;
    const serve::WireError error =
        serve::decodeRequest(payload, ctx.graph->alphabet(), request);

    // Response decode must be total for any bytes too; a daemon's
    // reply stream is attacker-observable, a client's parser of it
    // must not be attacker-crashable.
    serve::Response response;
    (void)serve::decodeResponse(payload, response);

    if (error != serve::WireError::None)
        return 0;

    // Mirror AlignServer::handleRequest's problem construction, then
    // hold decode to its promise: everything it accepts passes the
    // library's own full validation (no fatal is reachable past this
    // point on the serving path).
    std::vector<api::RaceProblem> problems;
    switch (request.tag) {
    case serve::RequestTag::Pairwise:
        problems.push_back(api::RaceProblem::pairwiseAlignment(
            *request.matrix, *request.a, *request.b));
        break;
    case serve::RequestTag::Affine:
        problems.push_back(api::RaceProblem::affineAlignment(
            *request.matrix,
            bio::AffineGapCosts{request.open, request.extend},
            *request.a, *request.b));
        break;
    case serve::RequestTag::Screen:
        problems.push_back(api::RaceProblem::thresholdScreen(
            *request.matrix, request.threshold, *request.a,
            *request.b));
        break;
    case serve::RequestTag::Dtw:
        problems.push_back(api::RaceProblem::dtw(
            std::move(request.x), std::move(request.y)));
        break;
    case serve::RequestTag::GraphAlign:
        problems.push_back(api::RaceProblem::graphAlign(
            ctx.matrix, *request.read, ctx.graph, request.threshold));
        break;
    case serve::RequestTag::MapReads:
        for (bio::Sequence &read : request.reads)
            problems.push_back(api::RaceProblem::graphAlign(
                ctx.matrix, std::move(read), ctx.graph,
                request.threshold));
        break;
    case serve::RequestTag::Stats:
    case serve::RequestTag::Ping:
    case serve::RequestTag::Metrics:
        return 0;
    }

    for (const api::RaceProblem &problem : problems) {
        if (racelogic::Status deep = api::validateProblem(problem);
            !deep.ok())
            violated("decode-accepted => validateProblem Ok",
                     deep.message());
        // The budget path must stay a typed verdict, never an abort,
        // whatever the sizes involved.
        api::ProblemLimits limits;
        limits.maxGridCells = 1u << 16;
        limits.maxProductStates = 1u << 16;
        (void)api::checkBudgets(problem, limits);
    }
    return 0;
}

} // namespace racelogic::fuzz
