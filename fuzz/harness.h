/**
 * @file
 * Fuzz entry points shared by the libFuzzer targets (fuzz_*.cc) and
 * the corpus-replay test (tests/fuzz_corpus_test.cc).
 *
 * Each function consumes arbitrary bytes and must return normally:
 * every parser under test is *total* on its input domain, mapping
 * any byte string to either a validated value or a typed rl::Status.
 * The harness aborts only when a totality promise is broken -- a
 * crash, a sanitizer report, or an accepted input the library's own
 * validation then rejects (the anti-drift property).
 */

#ifndef RACELOGIC_FUZZ_HARNESS_H
#define RACELOGIC_FUZZ_HARNESS_H

#include <cstddef>
#include <cstdint>

namespace racelogic::fuzz {

/** Arbitrary bytes as a GFA document through pangraph::tryReadGfa(). */
int gfaInput(const uint8_t *data, size_t size);

/** Arbitrary bytes as FASTA through bio::tryReadFasta(). */
int fastaInput(const uint8_t *data, size_t size);

/**
 * Arbitrary bytes as one wire request payload through
 * serve::decodeRequest() against a preloaded pangenome, then -- for
 * every accepted decode -- the same problems the server would queue
 * are checked against api::validateProblem(), aborting if decode
 * accepted what validation rejects.  The payload is also fed to
 * serve::decodeResponse() (total for any bytes).
 */
int wireInput(const uint8_t *data, size_t size);

} // namespace racelogic::fuzz

#endif // RACELOGIC_FUZZ_HARNESS_H
