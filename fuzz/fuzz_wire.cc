/** libFuzzer target: wire request decode + engine-level validation
 *  anti-drift (see fuzz/harness.h). */

#include "fuzz/harness.h"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    return racelogic::fuzz::wireInput(data, size);
}
