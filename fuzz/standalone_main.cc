/**
 * Replay driver for toolchains without libFuzzer (GCC): runs each
 * file argument through the target's LLVMFuzzerTestOneInput once.
 * No coverage feedback, no mutation -- corpus replay only.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *data, size_t size);

int
main(int argc, char **argv)
{
    int replayed = 0;
    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[i]);
            return 1;
        }
        std::vector<uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
        ++replayed;
    }
    std::fprintf(stderr, "replayed %d input(s)\n", replayed);
    return 0;
}
