/**
 * @file
 * DNA database screening with early termination (paper Section 6).
 *
 *   $ ./dna_screening [query_length] [database_size] [related_frac]
 *
 * Generates a database in which only a fraction of entries genuinely
 * descend from the query (the rest match by chance at best), then
 * screens it through api::RaceEngine::screen(): comparisons whose
 * score exceeds the threshold abort at the threshold cycle.  The
 * batch additionally dispatches onto the core::batch fabric pool,
 * so the report covers accepted entries, fabric-busy time, the
 * speedup over racing to completion, pool makespan/utilization, and
 * the equivalent systolic-array time, which cannot abort.
 */

#include <cstdlib>
#include <iostream>

#include "rl/api/api.h"
#include "rl/bio/sequence.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;

int
main(int argc, char **argv)
{
    size_t query_length = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                   : 48;
    size_t database_size = argc > 2 ? std::strtoul(argv[2], nullptr, 10)
                                    : 500;
    double related = argc > 3 ? std::strtod(argv[3], nullptr) : 0.1;
    if (query_length == 0 || database_size == 0 || related < 0.0 ||
        related > 1.0) {
        std::cerr << "usage: dna_screening [len>0] [db>0] [frac 0..1]\n";
        return 1;
    }

    util::Rng rng(2014);
    auto workload = bio::makeScreeningWorkload(
        rng, bio::Alphabet::dna(), query_length, database_size,
        related, bio::MutationModel{0.04, 0.02, 0.02});

    // Threshold: comfortably above the best case (N cycles), far
    // below the complete-mismatch worst case (2N).
    bio::Score threshold =
        static_cast<bio::Score>(query_length + query_length / 3);

    api::RaceEngine engine;
    api::BatchOutcome batch = engine.screen(
        bio::ScoreMatrix::dnaShortestPathInfMismatch(), threshold,
        workload.query, workload.database);

    uint64_t busy_with_threshold = batch.busyCycles();
    size_t true_related = 0, accepted_related = 0;
    for (size_t i = 0; i < batch.results.size(); ++i) {
        true_related += workload.related[i];
        if (workload.related[i] && batch.results[i].accepted)
            ++accepted_related;
    }

    const tech::CellLibrary &lib = *engine.config().library;
    uint64_t sys_cycles =
        systolic::LiptonLoprestiArray::latencyCycles(query_length,
                                                     query_length) *
        database_size;

    util::printBanner(std::cout, "Race Logic screening run");
    util::TextTable table({"metric", "value"});
    table.row("query length", query_length);
    table.row("database entries", database_size);
    table.row("threshold (cycles)", threshold);
    table.row("entries accepted", batch.acceptedCount());
    table.row("generator-related entries", true_related);
    table.row("related entries accepted", accepted_related);
    table.row("fabric-busy cycles (threshold)", busy_with_threshold);
    table.row("fabric-busy cycles (full race)", batch.fullRaceCycles());
    table.row("early-termination speedup",
              util::format("%.2fx", batch.speedup()));
    table.row("race wall time @333MHz",
              util::siFormat(double(busy_with_threshold) *
                                 lib.racePeriodNs * 1e-9,
                             "s"));
    table.row("systolic wall time @125MHz (no abort)",
              util::siFormat(double(sys_cycles) *
                                 lib.systolicPeriodNs * 1e-9,
                             "s"));
    if (batch.schedule) {
        table.row("pool fabrics",
                  engine.config().fabricCount);
        table.row("pool makespan (cycles)",
                  batch.schedule->makespanCycles);
        table.row("pool utilization",
                  util::format("%.1f%%",
                               batch.schedule->utilization * 100.0));
        table.row("pool throughput",
                  util::format("%.0f comparisons/s",
                               batch.schedule->comparisonsPerSecond(
                                   lib)));
    }
    table.print(std::cout);

    std::cout << "\nFirst accepted entries:\n";
    int shown = 0;
    for (size_t i = 0; i < batch.results.size() && shown < 5; ++i) {
        if (!batch.results[i].accepted)
            continue;
        std::cout << "  #" << i << " score " << batch.results[i].score
                  << (workload.related[i] ? "  (genuine relative)\n"
                                          : "  (chance similarity)\n");
        ++shown;
    }
    return 0;
}
