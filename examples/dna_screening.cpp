/**
 * @file
 * DNA database screening with early termination (paper Section 6).
 *
 *   $ ./dna_screening [query_length] [database_size] [related_frac]
 *
 * Generates a database in which only a fraction of entries genuinely
 * descend from the query (the rest match by chance at best), then
 * screens it with a threshold race: comparisons whose score exceeds
 * the threshold abort at the threshold cycle.  Reports accepted
 * entries, fabric-busy time, the speedup over racing to completion,
 * and the equivalent systolic-array time, which cannot abort.
 */

#include <cstdlib>
#include <iostream>

#include "rl/bio/sequence.h"
#include "rl/core/threshold.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/tech/cell_library.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;

int
main(int argc, char **argv)
{
    size_t query_length = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                   : 48;
    size_t database_size = argc > 2 ? std::strtoul(argv[2], nullptr, 10)
                                    : 500;
    double related = argc > 3 ? std::strtod(argv[3], nullptr) : 0.1;
    if (query_length == 0 || database_size == 0 || related < 0.0 ||
        related > 1.0) {
        std::cerr << "usage: dna_screening [len>0] [db>0] [frac 0..1]\n";
        return 1;
    }

    util::Rng rng(2014);
    auto workload = bio::makeScreeningWorkload(
        rng, bio::Alphabet::dna(), query_length, database_size,
        related, bio::MutationModel{0.04, 0.02, 0.02});

    // Threshold: comfortably above the best case (N cycles), far
    // below the complete-mismatch worst case (2N).
    bio::Score threshold =
        static_cast<bio::Score>(query_length + query_length / 3);
    core::ThresholdScreener screener(
        bio::ScoreMatrix::dnaShortestPathInfMismatch(), threshold);
    auto stats = screener.screenDatabase(workload.query,
                                         workload.database);

    size_t true_related = 0, accepted_related = 0;
    for (size_t i = 0; i < workload.database.size(); ++i) {
        true_related += workload.related[i];
        if (workload.related[i] && stats.accepted[i])
            ++accepted_related;
    }

    const tech::CellLibrary &lib = tech::CellLibrary::amis();
    uint64_t sys_cycles =
        systolic::LiptonLoprestiArray::latencyCycles(query_length,
                                                     query_length) *
        database_size;

    util::printBanner(std::cout, "Race Logic screening run");
    util::TextTable table({"metric", "value"});
    table.row("query length", query_length);
    table.row("database entries", database_size);
    table.row("threshold (cycles)", threshold);
    table.row("entries accepted", stats.acceptedCount);
    table.row("generator-related entries", true_related);
    table.row("related entries accepted", accepted_related);
    table.row("fabric-busy cycles (threshold)",
              stats.cyclesWithThreshold);
    table.row("fabric-busy cycles (full race)", stats.cyclesFullRace);
    table.row("early-termination speedup",
              util::format("%.2fx", stats.speedup()));
    table.row("race wall time @333MHz",
              util::siFormat(double(stats.cyclesWithThreshold) *
                                 lib.racePeriodNs * 1e-9,
                             "s"));
    table.row("systolic wall time @125MHz (no abort)",
              util::siFormat(double(sys_cycles) *
                                 lib.systolicPeriodNs * 1e-9,
                             "s"));
    table.print(std::cout);

    std::cout << "\nFirst accepted entries:\n";
    int shown = 0;
    for (size_t i = 0; i < workload.database.size() && shown < 5; ++i) {
        if (!stats.accepted[i])
            continue;
        auto outcome =
            screener.screen(workload.query, workload.database[i]);
        std::cout << "  #" << i << " score " << outcome.score
                  << (workload.related[i] ? "  (genuine relative)\n"
                                          : "  (chance similarity)\n");
        ++shown;
    }
    return 0;
}
