/**
 * @file
 * Quickstart: align two DNA strings with Race Logic in a dozen lines.
 *
 *   $ ./quickstart [stringP] [stringQ]
 *
 * Describes the alignment as an api::RaceProblem, solves it through
 * the unified api::RaceEngine (the library's one front door), and
 * prints the score, the hardware latency, and the propagation table
 * of Fig. 4c.  A DP cross-check shows the race is exact.
 */

#include <iostream>
#include <string>

#include "rl/api/api.h"
#include "rl/bio/align_dp.h"

using namespace racelogic;

int
main(int argc, char **argv)
{
    std::string text_p = argc > 1 ? argv[1] : "ACTGAGA";
    std::string text_q = argc > 2 ? argv[2] : "GATTCGA";

    const bio::Alphabet &dna = bio::Alphabet::dna();
    for (const std::string &text : {text_p, text_q}) {
        for (char ch : text) {
            if (!dna.contains(ch)) {
                std::cerr << "not a DNA string: " << text << '\n';
                return 1;
            }
        }
    }

    bio::Sequence p(dna, text_p);
    bio::Sequence q(dna, text_q);

    // The public entry point: describe the problem, solve it.
    api::RaceEngine engine;
    api::RaceResult outcome = engine.solve(
        api::RaceProblem::pairwiseAlignment(
            bio::ScoreMatrix::dnaShortestPathInfMismatch(), q, p));

    std::cout << "Race Logic global alignment\n"
              << "  P = " << text_p << "\n  Q = " << text_q << "\n\n"
              << "edit distance (Fig. 2b costs): " << outcome.score
              << "\nhardware latency: " << outcome.latencyCycles
              << " clock cycles (score == arrival time!)\n\n"
              << "propagation table (Fig. 4c view):\n"
              << outcome.arrivalTable();
    if (outcome.estimate)
        std::cout << "\npriced by the AMIS 0.5um model: "
                  << outcome.estimate->wallTimeNs << " ns, "
                  << outcome.estimate->energyJ * 1e12 << " pJ, "
                  << outcome.estimate->areaUm2 << " um2 of fabric\n";

    // Cross-check against the reference DP and show the alignment.
    bio::Alignment dp = bio::globalAlign(
        q, p, bio::ScoreMatrix::dnaShortestPathInfMismatch());
    std::cout << "\nDP cross-check: score = " << dp.score
              << (dp.score == outcome.score ? " (agrees)\n"
                                            : " (DISAGREES!)\n")
              << "one optimal alignment:\n  Q " << dp.alignedA
              << "\n  P " << dp.alignedB << '\n';
    return dp.score == outcome.score ? 0 : 1;
}
