/**
 * @file
 * Protein comparison on the generalized architecture (Section 5).
 *
 *   $ ./protein_blosum [seqA] [seqB]
 *
 * Takes two amino-acid strings (BLOSUM alphabet ARNDCQEGHILKMFPSTWYV)
 * and solves a generalized-alignment RaceProblem through the unified
 * api::RaceEngine: BLOSUM62 is converted into race-ready costs (sign
 * inversion + rank bias), the edit graph is raced with Fig. 8-style
 * generalized cells, and the winning delay is mapped back to the
 * BLOSUM62 similarity score.  The DP oracle and the alignment
 * rendering confirm exactness.
 */

#include <iostream>
#include <string>

#include "rl/api/api.h"
#include "rl/bio/align_dp.h"
#include "rl/bio/score_convert.h"
#include "rl/core/generalized.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;

int
main(int argc, char **argv)
{
    std::string text_a = argc > 1 ? argv[1] : "HEAGAWGHEE";
    std::string text_b = argc > 2 ? argv[2] : "PAWHEAE";

    const bio::Alphabet &aa = bio::Alphabet::protein();
    for (const std::string &text : {text_a, text_b}) {
        for (char ch : text) {
            if (!aa.contains(ch)) {
                std::cerr << "not an amino-acid string (alphabet "
                          << aa.letters() << "): " << text << '\n';
                return 1;
            }
        }
    }
    bio::Sequence a(aa, text_a);
    bio::Sequence b(aa, text_b);

    bio::ScoreMatrix blosum = bio::ScoreMatrix::blosum62();
    api::RaceEngine engine;
    api::RaceResult result = engine.solve(
        api::RaceProblem::generalizedAlignment(blosum, a, b));

    // The Section 5 conversion the engine applied, shown explicitly.
    bio::ShortestPathForm form = bio::toShortestPathForm(blosum);
    auto spec = core::GeneralizedCellSpec::fromMatrix(form.costs);

    util::printBanner(std::cout,
                      "Section 5 conversion (BLOSUM62 -> race costs)");
    util::TextTable conv({"bias b", "lambda", "dynamic range N_DR",
                          "counter bits per edge"});
    conv.row(form.bias, form.lambda, spec.dynamicRange,
             spec.counterBits);
    conv.print(std::cout);

    util::printBanner(std::cout, "Race outcome");
    util::TextTable out({"metric", "value"});
    out.row("sequence A", text_a);
    out.row("sequence B", text_b);
    out.row("raced cost (cycles)", result.racedCost);
    out.row("recovered BLOSUM62 score", result.score);
    out.row("recovery identity",
            util::format(
                "b*(n+m) - cost = %lld*(%zu+%zu) - %lld = %lld",
                static_cast<long long>(form.bias), a.size(), b.size(),
                static_cast<long long>(result.racedCost),
                static_cast<long long>(result.score)));
    out.print(std::cout);

    bio::Alignment dp = bio::globalAlign(a, b, blosum);
    std::cout << "\nDP cross-check: score = " << dp.score
              << (dp.score == result.score ? " (agrees)\n"
                                           : " (DISAGREES)\n")
              << "one optimal alignment:\n  A " << dp.alignedA
              << "\n  B " << dp.alignedB << "\n  matches "
              << dp.matches << ", mismatches " << dp.mismatches
              << ", indels " << dp.indels << '\n';
    return dp.score == result.score ? 0 : 1;
}
