/**
 * @file
 * Read mapping against a pangenome variation graph: load a GFA, race
 * every FASTA read through api::RaceEngine's GraphAlign workload,
 * and print each read's verdict, distance, mapped walk, and CIGAR.
 *
 *   $ ./graph_align [graph.gfa reads.fasta] [--threshold T]
 *
 * With no file arguments, a demo graph (the bundled
 * examples/data/bubbles.gfa) and a small read set are written to
 * temporary paths and used.  All reads share ONE cached graph plan
 * -- the engine's plan-cache stats printed at the end are the
 * point: load the pangenome once, race any number of reads.  A
 * finite --threshold turns the batch into a Section 6 read-mapping
 * screen (races abort at the threshold cycle); mappings are then
 * reconstructed only for accepted reads.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "rl/api/api.h"
#include "rl/bio/fasta.h"
#include "rl/pangraph/gfa.h"
#include "rl/util/table.h"

using namespace racelogic;

namespace {

std::string
writeDemoGfa()
{
    // Prefer the bundled sample when running from the repo root; the
    // literal below is its fallback copy for out-of-tree runs.
    const std::string bundled = "examples/data/bubbles.gfa";
    if (std::ifstream(bundled).good())
        return bundled;
    std::string path = "/tmp/racelogic_demo.gfa";
    std::ofstream out(path);
    out << "H\tVN:Z:1.0\n"
           "S\ts1\tACTGA\nS\ts2\tG\nS\ts3\tT\nS\ts4\tAC\n"
           "S\ts5\tGT\nS\ts6\tTAGA\n"
           "L\ts1\t+\ts2\t+\t0M\nL\ts1\t+\ts3\t+\t0M\n"
           "L\ts2\t+\ts4\t+\t0M\nL\ts3\t+\ts4\t+\t0M\n"
           "L\ts4\t+\ts5\t+\t0M\nL\ts4\t+\ts6\t+\t0M\n"
           "L\ts5\t+\ts6\t+\t0M\n";
    return path;
}

std::string
writeDemoReads()
{
    const std::string bundled = "examples/data/demo_reads.fasta";
    if (std::ifstream(bundled).good())
        return bundled;
    std::string path = "/tmp/racelogic_demo_reads.fasta";
    std::ofstream out(path);
    out << ">exact-short-walk\nACTGAGACTAGA\n"
           ">exact-long-walk\nACTGATACGTTAGA\n"
           ">one-substitution\nACTGAGACTACA\n"
           ">small-indel\nACTGAGACAGA\n"
           ">unrelated\nGGGGGGGGGGGG\n";
    return path;
}

std::string
walkString(const pangraph::VariationGraph &graph,
           const pangraph::GraphMapping &mapping)
{
    std::string out;
    for (pangraph::SegmentId id : mapping.path) {
        if (!out.empty())
            out += '>';
        out += graph.segment(id).name;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bio::Score threshold = bio::kScoreInfinity;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--threshold" && i + 1 < argc) {
            char *end = nullptr;
            threshold = std::strtoll(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || threshold < 0) {
                std::cerr << "--threshold needs a non-negative "
                             "integer, got '" << argv[i] << "'\n";
                return 1;
            }
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "usage: graph_align [graph.gfa reads.fasta] "
                         "[--threshold T]\n";
            return 1;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 0 && paths.size() != 2) {
        std::cerr << "usage: graph_align [graph.gfa reads.fasta] "
                     "[--threshold T]\n";
        return 1;
    }
    std::string gfaPath = paths.empty() ? writeDemoGfa() : paths[0];
    std::string readsPath = paths.empty() ? writeDemoReads() : paths[1];

    const bio::Alphabet &alphabet = bio::Alphabet::dna();
    auto graph = std::make_shared<const pangraph::VariationGraph>(
        pangraph::readGfaFile(gfaPath, alphabet));
    auto records = bio::readFastaFile(readsPath, alphabet);
    if (records.empty()) {
        std::cerr << "no reads in " << readsPath << '\n';
        return 1;
    }

    bio::ScoreMatrix costs = bio::ScoreMatrix::dnaShortestPath();
    util::printBanner(
        std::cout,
        "mapping " + std::to_string(records.size()) + " reads against " +
            gfaPath + " (" + std::to_string(graph->segmentCount()) +
            " segments, " + std::to_string(graph->linkCount()) +
            " links)");

    // One engine batch: every read shares the cached graph plan and
    // behavioral batches race on the thread pool.
    api::RaceEngine engine;
    std::vector<bio::Sequence> reads;
    reads.reserve(records.size());
    for (const bio::FastaRecord &record : records)
        reads.push_back(record.sequence);
    api::BatchOutcome outcome =
        engine.mapReads(graph, costs, threshold, reads);

    // Mappings (walk + CIGAR) for the accepted reads, traced back by
    // the engine from the arrival times the batch already raced --
    // no read is aligned twice and no second graph compile happens
    // (the traceback walks the cached plan).
    util::TextTable table(
        {"read", "length", "distance", "verdict", "walk", "CIGAR"});
    for (size_t i = 0; i < records.size(); ++i) {
        const api::RaceResult &r = outcome.results[i];
        if (!r.accepted) {
            table.row(records[i].description, reads[i].size(), "-",
                      "rejected@" + std::to_string(r.cyclesUsed), "-",
                      "-");
            continue;
        }
        pangraph::GraphMapping mapping = engine.graphMapping(
            api::RaceProblem::graphAlign(costs, reads[i], graph,
                                         threshold),
            r);
        table.row(records[i].description, reads[i].size(), r.score,
                  "mapped", walkString(*graph, mapping), mapping.cigar);
    }
    table.print(std::cout);

    std::cout << "plan cache: " << engine.stats().plansBuilt
              << " graph plan(s) built, " << engine.stats().planCacheHits
              << " reused across " << engine.stats().solves
              << " reads\n";
    if (threshold != bio::kScoreInfinity)
        std::cout << "screen: " << outcome.acceptedCount() << "/"
                  << reads.size() << " reads accepted at threshold "
                  << threshold << ", " << outcome.busyCycles()
                  << " total fabric-busy cycles\n";
    return 0;
}
