/**
 * @file
 * Race Logic as a general DAG path solver -- the paradigm beyond
 * sequence alignment.
 *
 *   $ ./dag_shortest_path [nodes] [edge_prob] [seed]
 *
 * Builds the paper's Fig. 3 example plus a random weighted DAG and
 * solves each as a dagPath RaceProblem through the unified
 * api::RaceEngine -- once on the behavioral backend (event-driven
 * race) and once on the gate-level backend, which compiles the DAG to
 * an OR/AND + DFF netlist and cross-checks the sink arrival on real
 * gates.  Both are checked against the dynamic-programming oracle.
 */

#include <cstdlib>
#include <iostream>

#include "rl/api/api.h"
#include "rl/core/race_network.h"
#include "rl/graph/generate.h"
#include "rl/graph/paths.h"
#include "rl/graph/topo.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;
using graph::Dag;
using graph::NodeId;

namespace {

void
solveBothWays(const Dag &dag, const std::vector<NodeId> &sources,
              NodeId sink, const std::string &title)
{
    api::EngineConfig behavioral;
    api::EngineConfig gateLevel;
    gateLevel.backend = api::BackendKind::GateLevel;
    api::RaceEngine softEngine(behavioral);
    api::RaceEngine hardEngine(gateLevel);

    util::printBanner(std::cout, title);
    util::TextTable table({"objective", "DP", "event race",
                           "gate-level race", "raced nodes"});
    for (graph::Objective objective :
         {graph::Objective::Shortest, graph::Objective::Longest}) {
        bool is_or = objective == graph::Objective::Shortest;
        if (!is_or && !core::andRaceMatchesDp(dag, sources)) {
            table.row("longest (AND)", "-", "-",
                      "skipped: unreachable predecessor stalls the "
                      "AND race",
                      "-");
            continue;
        }
        auto dp = graph::solveDag(dag, sources, objective);
        api::RaceProblem problem =
            api::RaceProblem::dagPath(dag, sources, sink, objective);
        api::RaceResult soft = softEngine.solve(problem);
        // The gate-level solve internally compiles the netlist and
        // asserts agreement with the event-driven model.
        api::RaceResult hard = hardEngine.solve(problem);
        table.row(is_or ? "shortest (OR)" : "longest (AND)",
                  dp.distance[sink],
                  soft.completed ? std::to_string(soft.score)
                                 : std::string("never"),
                  hard.completed ? std::to_string(hard.score)
                                 : std::string("never"),
                  soft.nodes);
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
    double edge_prob = argc > 2 ? std::strtod(argv[2], nullptr) : 0.15;
    uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
    if (nodes < 2 || edge_prob <= 0.0 || edge_prob > 1.0) {
        std::cerr << "usage: dag_shortest_path [nodes>=2] "
                     "[edge_prob (0,1]] [seed]\n";
        return 1;
    }

    Dag fig3 = graph::makeFig3ExampleDag();
    solveBothWays(fig3, {0, 1}, 4,
                  "Paper Fig. 3 example DAG (sink should fire at "
                  "cycle 2 for the OR race)");

    util::Rng rng(seed);
    Dag random = graph::randomDag(rng, nodes, edge_prob, {1, 6});
    auto [source, sink] = graph::addSuperEndpoints(random, 1);
    std::cout << "\nrandom DAG: " << random.nodeCount() << " nodes, "
              << random.edgeCount() << " edges, depth "
              << graph::depth(random) << '\n';
    solveBothWays(random, {source}, sink,
                  util::format("Random DAG (%zu nodes, p = %.2f, "
                               "seed %llu)",
                               nodes, edge_prob,
                               (unsigned long long)seed));
    return 0;
}
