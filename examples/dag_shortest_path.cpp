/**
 * @file
 * Race Logic as a general DAG path solver -- the paradigm beyond
 * sequence alignment.
 *
 *   $ ./dag_shortest_path [nodes] [edge_prob] [seed]
 *
 * Builds the paper's Fig. 3 example plus a random weighted DAG, maps
 * each to OR-type (shortest path) and AND-type (longest path) races,
 * runs them event-driven AND as compiled gate-level netlists, and
 * checks both against the dynamic-programming oracle.
 */

#include <cstdlib>
#include <iostream>

#include "rl/circuit/sim_sync.h"
#include "rl/core/race_network.h"
#include "rl/graph/generate.h"
#include "rl/graph/paths.h"
#include "rl/graph/topo.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;
using core::RaceType;
using graph::Dag;
using graph::NodeId;

namespace {

void
solveBothWays(const Dag &dag, const std::vector<NodeId> &sources,
              NodeId sink, const std::string &title)
{
    util::printBanner(std::cout, title);
    util::TextTable table({"objective", "DP", "event race",
                           "gate-level race", "gates"});
    for (RaceType type : {RaceType::Or, RaceType::And}) {
        bool is_or = type == RaceType::Or;
        if (!is_or && !core::andRaceMatchesDp(dag, sources)) {
            table.row("longest (AND)", "-", "-",
                      "skipped: unreachable predecessor stalls the "
                      "AND race",
                      "-");
            continue;
        }
        auto dp = graph::solveDag(dag, sources,
                                  is_or ? graph::Objective::Shortest
                                        : graph::Objective::Longest);
        auto event = core::raceDag(dag, sources, type);
        auto rc = core::compileRaceCircuit(dag, sources, type);
        circuit::SyncSim sim(rc.netlist);
        for (circuit::NetId in : rc.sourceInputs)
            sim.setInput(in, true);
        auto arrival = sim.runUntil(
            rc.nodeNets[sink], true,
            uint64_t(dp.distance[sink]) + 4);
        table.row(is_or ? "shortest (OR)" : "longest (AND)",
                  dp.distance[sink],
                  event.at(sink).fired()
                      ? std::to_string(event.at(sink).time())
                      : std::string("never"),
                  arrival ? std::to_string(*arrival)
                          : std::string("never"),
                  rc.netlist.gateCount());
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
    double edge_prob = argc > 2 ? std::strtod(argv[2], nullptr) : 0.15;
    uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
    if (nodes < 2 || edge_prob <= 0.0 || edge_prob > 1.0) {
        std::cerr << "usage: dag_shortest_path [nodes>=2] "
                     "[edge_prob (0,1]] [seed]\n";
        return 1;
    }

    Dag fig3 = graph::makeFig3ExampleDag();
    solveBothWays(fig3, {0, 1}, 4,
                  "Paper Fig. 3 example DAG (sink should fire at "
                  "cycle 2 for the OR race)");

    util::Rng rng(seed);
    Dag random = graph::randomDag(rng, nodes, edge_prob, {1, 6});
    auto [source, sink] = graph::addSuperEndpoints(random, 1);
    std::cout << "\nrandom DAG: " << random.nodeCount() << " nodes, "
              << random.edgeCount() << " edges, depth "
              << graph::depth(random) << '\n';
    solveBothWays(random, {source}, sink,
                  util::format("Random DAG (%zu nodes, p = %.2f, "
                               "seed %llu)",
                               nodes, edge_prob,
                               (unsigned long long)seed));
    return 0;
}
