/**
 * @file
 * Dynamic time warping on Race Logic -- the paradigm beyond strings.
 *
 *   $ ./dtw_signals [length] [noise]
 *
 * Generates a quantized reference sine and three candidates (a
 * phase-shifted copy, a noisy copy, and an unrelated waveform), and
 * solves the DTW lattice of each pair as a RaceProblem through the
 * unified api::RaceEngine, comparing the raced distances with the
 * reference DP and with rigid sample-by-sample distance.
 * Warping-tolerant matching in O(n) race cycles is the kind of
 * "limited but useful computation" the paper's Section 7 argues
 * temporal logic is for.
 */

#include <cstdlib>
#include <iostream>

#include "rl/api/api.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;
using apps::Sample;

namespace {

int64_t
rigidDistance(const std::vector<Sample> &x, const std::vector<Sample> &y)
{
    int64_t total = 0;
    size_t upto = std::min(x.size(), y.size());
    for (size_t t = 0; t < upto; ++t)
        total += std::abs(x[t] - y[t]);
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t length = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
    double noise = argc > 2 ? std::strtod(argv[2], nullptr) : 3.0;
    if (length < 2) {
        std::cerr << "usage: dtw_signals [length>=2] [noise>=0]\n";
        return 1;
    }

    util::Rng rng(77);
    auto reference = apps::quantizedSine(rng, length, 2.0, 40.0);
    struct Candidate {
        const char *name;
        std::vector<Sample> signal;
    };
    std::vector<Candidate> candidates{
        {"identical", reference},
        {"phase-shifted", apps::quantizedSine(rng, length, 2.0, 40.0,
                                              0.7)},
        {"noisy copy", apps::quantizedSine(rng, length, 2.0, 40.0, 0.0,
                                           noise)},
        {"different frequency",
         apps::quantizedSine(rng, length, 5.0, 40.0)},
    };

    api::RaceEngine engine;

    util::printBanner(std::cout,
                      util::format("DTW races against a %zu-sample "
                                   "quantized sine",
                                   length));
    util::TextTable table({"candidate", "raced DTW", "DP DTW",
                           "rigid distance", "race cycles",
                           "race events"});
    for (const Candidate &c : candidates) {
        auto raced = engine.solve(
            api::RaceProblem::dtw(reference, c.signal));
        table.row(c.name, raced.score,
                  apps::dtwDistance(reference, c.signal),
                  rigidDistance(reference, c.signal),
                  raced.latencyCycles, raced.events);
    }
    table.print(std::cout);
    std::cout << "(warping absorbs the phase shift that rigid "
                 "comparison cannot; the raced distance is read off "
                 "the clock, latency == distance)\n";
    return 0;
}
