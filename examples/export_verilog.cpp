/**
 * @file
 * Export a synthesizable Race Logic fabric as structural Verilog.
 *
 *   $ ./export_verilog [rows] [cols] [out.v]
 *
 * Emits the Fig. 4 unit-cell grid as a Verilog-2001 module (clk/rst,
 * per-row/column symbol inputs, done output) -- the artifact the
 * paper pushed through Synopsys Design Vision.  Also prints the gate
 * inventory so the area numbers in rl/tech can be compared with a
 * real synthesis report.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "rl/api/api.h"
#include "rl/circuit/verilog.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/tech/area_model.h"
#include "rl/util/random.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;

int
main(int argc, char **argv)
{
    size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
    size_t cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 7;
    std::string path =
        argc > 3 ? argv[3] : "/tmp/race_grid.v";
    if (rows < 1 || cols < 1 || rows > 64 || cols > 64) {
        std::cerr << "usage: export_verilog [rows 1..64] [cols 1..64] "
                     "[out.v]\n";
        return 1;
    }

    core::RaceGridCircuit fabric(bio::Alphabet::dna(), rows, cols);

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << '\n';
        return 1;
    }
    // The grid's sink is the last OR gate created; expose it.
    circuit::NetId sink =
        static_cast<circuit::NetId>(fabric.netlist().gateCount() - 1);
    circuit::writeVerilog(out, fabric.netlist(),
                          util::format("race_grid_%zux%zu", rows, cols),
                          {{"done", sink}});

    auto counts = fabric.netlist().typeCounts();
    util::printBanner(std::cout, "wrote " + path);
    util::TextTable table({"metric", "value"});
    table.row("module",
              util::format("race_grid_%zux%zu", rows, cols));
    table.row("total gates", fabric.netlist().gateCount());
    table.row("DFFs", counts[size_t(circuit::GateType::Dff)]);
    table.row("OR cells", counts[size_t(circuit::GateType::Or)]);
    table.row("XNOR comparators",
              counts[size_t(circuit::GateType::Xnor)]);
    table.row("model area (AMIS, um2)",
              tech::raceGridArea(tech::CellLibrary::amis(), rows, cols,
                                 2)
                  .totalUm2);
    table.print(std::cout);

    // Validate the exported shape through the unified engine: a
    // gate-level solve synthesizes a same-shape fabric, races it,
    // and asserts agreement with the behavioral model.
    util::Rng rng(14);
    bio::Sequence a =
        bio::Sequence::random(rng, bio::Alphabet::dna(), rows);
    bio::Sequence b =
        bio::Sequence::random(rng, bio::Alphabet::dna(), cols);
    api::EngineConfig hardware;
    hardware.backend = api::BackendKind::GateLevel;
    api::RaceEngine engine(hardware);
    api::RaceResult check = engine.solve(api::RaceProblem::pairwiseAlignment(
        bio::ScoreMatrix::dnaShortestPathInfMismatch(), a, b));
    std::cout << "\ngate-level cross-check via api::RaceEngine: "
              << a.str() << " vs " << b.str() << " -> score "
              << check.score << " in " << check.latencyCycles
              << " cycles (fabric and behavioral model agree)\n";

    std::cout << "\nUsage of the module: deassert rst, drive the "
                 "symbol buses,\nraise 'go'; count cycles until "
                 "'done' rises -- that count is\nthe alignment "
                 "score.\n";
    return 0;
}
