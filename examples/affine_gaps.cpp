/**
 * @file
 * Affine-gap alignment on Race Logic -- three-layer lattices racing.
 *
 *   $ ./affine_gaps [seqA] [seqB] [open] [extend]
 *
 * The paper's case study charges every indel equally; this example
 * races the Gotoh three-state lattice instead, where opening a gap
 * costs more than extending one.  Each regime is one RaceProblem
 * solved through the unified api::RaceEngine, showing long coherent
 * gaps winning as the opening premium grows -- with every number read
 * off the race clock and cross-checked against the reference DP.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "rl/api/api.h"
#include "rl/bio/affine.h"
#include "rl/util/table.h"

using namespace racelogic;

int
main(int argc, char **argv)
{
    std::string text_a = argc > 1 ? argv[1] : "ACGTACGTACGT";
    std::string text_b = argc > 2 ? argv[2] : "ACGTACGT";
    bio::Score open = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 0;
    bio::Score extend = argc > 4 ? std::strtol(argv[4], nullptr, 10) : 0;

    const bio::Alphabet &dna = bio::Alphabet::dna();
    for (const std::string &text : {text_a, text_b}) {
        for (char ch : text) {
            if (!dna.contains(ch)) {
                std::cerr << "not a DNA string: " << text << '\n';
                return 1;
            }
        }
    }
    bio::Sequence a(dna, text_a);
    bio::Sequence b(dna, text_b);

    // Pair costs: match 1, mismatch 3 (race-ready).
    bio::ScoreMatrix costs(dna, bio::ScoreKind::Cost);
    for (bio::Symbol s = 0; s < 4; ++s)
        for (bio::Symbol t = 0; t < 4; ++t)
            costs.setPair(s, t, s == t ? 1 : 3);

    api::RaceEngine engine;

    util::printBanner(std::cout,
                      "Affine-gap races: " + text_a + " vs " + text_b);
    util::TextTable table({"open", "extend", "raced cost", "Gotoh DP",
                           "lattice nodes", "race cycles"});
    std::vector<bio::AffineGapCosts> regimes;
    if (open >= 1 && extend >= 1 && open >= extend) {
        regimes.push_back({open, extend});
    } else {
        regimes = {{1, 1}, {2, 1}, {4, 1}, {8, 1}, {8, 2}};
    }
    for (const auto &gaps : regimes) {
        auto raced = engine.solve(
            api::RaceProblem::affineAlignment(costs, gaps, a, b));
        table.row(gaps.open, gaps.extend, raced.score,
                  bio::affineGlobalScore(a, b, costs, gaps),
                  raced.nodes, raced.latencyCycles);
    }
    table.print(std::cout);
    std::cout << "(same race hardware concept, different DAG: three "
                 "lattice layers instead of one -- the 'not limited "
                 "to' claim of the paper's Section 7, working)\n";
    return 0;
}
