/**
 * serve_roundtrip: the alignment daemon, in-process, end to end.
 *
 * Starts an AlignServer on an ephemeral loopback TCP port, speaks the
 * length-prefixed wire protocol through a ServeClient, and shows the
 * three behaviors the serving layer adds on top of api::RaceEngine:
 * served solves identical to direct ones, typed admission rejections,
 * and the shard-hit/build-lock counters that prove warm traffic never
 * touches shared state.
 *
 * Run: ./serve_roundtrip
 */

#include <cstdio>
#include <string>

#include "rl/api/api.h"
#include "rl/serve/client.h"
#include "rl/serve/server.h"

using namespace racelogic;

int
main()
{
    serve::ServerConfig cfg;
    cfg.tcpPort = 0; // ephemeral: the kernel picks, server.port() tells
    cfg.workers = 2;
    cfg.queueDepth = 8;
    cfg.engine.withEstimates = false;
    serve::AlignServer server(std::move(cfg));
    if (!server.start()) {
        std::perror("serve_roundtrip: bind failed");
        return 1;
    }
    std::printf("daemon up on 127.0.0.1:%u\n\n",
                static_cast<unsigned>(server.port()));

    serve::ServeClient client = serve::ServeClient::overTcp(server.port());
    const bio::ScoreMatrix costs = bio::ScoreMatrix::dnaShortestPath();
    const std::string a = "GATTACAGATTACA", b = "GATCACAGTTTACA";

    // --- 1. a served solve vs. the engine called directly ---------
    client.submitPairwise(1, costs, a, b);
    serve::Response response;
    client.receive(response);

    api::RaceEngine engine;
    const api::RaceResult direct =
        engine.solve(api::RaceProblem::pairwiseAlignment(
            costs, bio::Sequence(bio::Alphabet("ACGT"), a),
            bio::Sequence(bio::Alphabet("ACGT"), b)));

    std::printf("served score %lld in %llu cycles; direct engine says "
                "%lld in %llu -- %s\n",
                static_cast<long long>(response.solve->score),
                static_cast<unsigned long long>(
                    response.solve->latencyCycles),
                static_cast<long long>(direct.score),
                static_cast<unsigned long long>(direct.latencyCycles),
                response.solve->score == direct.score ? "identical"
                                                      : "MISMATCH");

    // --- 2. typed rejections, not crashes -------------------------
    client.submitRaw({42, 0, 0, 0, 200}); // tag 200 does not exist
    client.receive(response);
    std::printf("garbage tag answered with status '%s' (%s), id %u\n",
                serve::statusName(response.status),
                response.message.c_str(), response.id);

    // --- 3. warm traffic is shard-local ---------------------------
    for (uint32_t id = 10; id < 30; ++id) {
        client.submitPairwise(id, costs, a, b);
        client.receive(response);
    }
    for (const serve::ShardStatsWire &s : server.shardStats())
        if (s.solves > 0)
            std::printf("shard served %llu solves: %llu shard-local "
                        "hits, %llu build-lock acquisitions\n",
                        static_cast<unsigned long long>(s.solves),
                        static_cast<unsigned long long>(s.shardHits),
                        static_cast<unsigned long long>(s.buildLocks));

    server.stop();
    std::printf("\ndaemon drained and stopped cleanly\n");
    return 0;
}
