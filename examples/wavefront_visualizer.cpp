/**
 * @file
 * ASCII animation of the computation wavefront (paper Figs. 4c & 6).
 *
 *   $ ./wavefront_visualizer [stringP] [stringQ]
 *
 * Solves the alignment through the unified api::RaceEngine and prints
 * one frame per clock cycle: '#' cells have latched, 'o' cells are
 * firing this cycle, '.' cells are still dark.  Watching a best-case
 * pair shows the diagonal bullet of Fig. 6b; a worst-case pair shows
 * the anti-diagonal front of Fig. 6a.  The firing set per cycle is
 * exactly what data-dependent clock gating keeps awake.
 */

#include <iostream>
#include <string>

#include "rl/api/api.h"
#include "rl/core/clock_gating.h"

using namespace racelogic;

int
main(int argc, char **argv)
{
    std::string text_p = argc > 1 ? argv[1] : "ACTGAGA";
    std::string text_q = argc > 2 ? argv[2] : "GATTCGA";
    const bio::Alphabet &dna = bio::Alphabet::dna();
    for (const std::string &text : {text_p, text_q}) {
        for (char ch : text) {
            if (!dna.contains(ch)) {
                std::cerr << "not a DNA string: " << text << '\n';
                return 1;
            }
        }
    }

    bio::Sequence p(dna, text_p);
    bio::Sequence q(dna, text_q);
    api::RaceEngine engine;
    api::RaceResult result = engine.solve(
        api::RaceProblem::pairwiseAlignment(
            bio::ScoreMatrix::dnaShortestPathInfMismatch(), q, p));

    std::cout << "racing " << text_q << " (rows) against " << text_p
              << " (cols); score = " << result.score << "\n\n";
    for (sim::Tick t = 0; t <= result.latencyCycles; ++t) {
        std::cout << "cycle " << t << "  (" << result.wavefrontSize(t)
                  << " cells firing)\n"
                  << result.wavefrontPicture(t) << '\n';
    }

    // What would the H-tree gate off?  Show region activity at the
    // Eq. 7-ish granularity m = 2.
    core::GatingAnalysis gating =
        core::analyzeClockGating(result.gridDetail(), 2);
    std::cout << "clock gating at m = 2: " << gating.regions
              << " regions, clock activity ratio "
              << gating.clockActivityRatio() << '\n'
              << "final arrival table:\n"
              << result.arrivalTable();
    return 0;
}
