/**
 * @file
 * FASTA-driven alignment: race every record of a FASTA file against
 * the first one through the unified api::RaceEngine.
 *
 *   $ ./fasta_align [file.fasta] [--protein]
 *
 * With no file argument a small demo FASTA is written to a
 * temporary path and used.  DNA records race on the Fig. 2b-family
 * matrix; with --protein, records race BLOSUM62 on the generalized
 * architecture and similarity scores are recovered from the winning
 * delays (Section 5).  Same-length records share one cached fabric
 * plan -- the engine's plan-cache stats are printed at the end.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "rl/api/api.h"
#include "rl/bio/fasta.h"
#include "rl/util/table.h"

using namespace racelogic;

namespace {

std::string
writeDemoFasta()
{
    std::string path = "/tmp/racelogic_demo.fasta";
    std::ofstream out(path);
    out << "; demo database for fasta_align\n"
           ">query (the paper's P)\nACTGAGA\n"
           ">paper-Q\nGATTCGA\n"
           ">identical\nACTGAGA\n"
           ">one-substitution\nACTGTGA\n"
           ">unrelated\nTTTTTTT\n";
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    bool protein = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--protein")
            protein = true;
        else
            path = arg;
    }
    if (path.empty())
        path = writeDemoFasta();

    const bio::Alphabet &alphabet =
        protein ? bio::Alphabet::protein() : bio::Alphabet::dna();
    auto records = bio::readFastaFile(path, alphabet);
    if (records.size() < 2) {
        std::cerr << "need at least two records in " << path << '\n';
        return 1;
    }

    bio::ScoreMatrix matrix =
        protein ? bio::ScoreMatrix::blosum62()
                : bio::ScoreMatrix::dnaShortestPathInfMismatch();
    api::RaceEngine engine;

    const bio::Sequence &query = records[0].sequence;
    util::printBanner(std::cout,
                      "racing '" + records[0].description +
                          "' against " +
                          std::to_string(records.size() - 1) +
                          " records from " + path);
    util::TextTable table({"record", "length",
                           protein ? "BLOSUM62 score" : "edit cost",
                           "latency cycles"});
    for (size_t r = 1; r < records.size(); ++r) {
        auto outcome = engine.solve(api::RaceProblem::pairwiseAlignment(
            matrix, query, records[r].sequence));
        table.row(records[r].description, records[r].sequence.size(),
                  outcome.score, outcome.latencyCycles);
    }
    table.print(std::cout);
    std::cout << "(lower cost / higher similarity arrives earlier -- "
                 "the race IS the comparison)\n"
              << "plan cache: " << engine.stats().plansBuilt
              << " fabric plans built, " << engine.stats().planCacheHits
              << " reused across " << engine.stats().solves
              << " races\n";
    return 0;
}
