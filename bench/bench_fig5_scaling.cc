/**
 * @file
 * Reproduces Figure 5: area (a, d), latency (b, e), and energy per
 * comparison (c, f) as a function of string length N, for Race Logic
 * and the Lipton-Lopresti systolic array under both standard-cell
 * libraries.
 *
 * Panels a/b/c use the AMIS parameters, d/e/f the OSU parameters.
 * The energy panel prints the analytic Eq. 3/4 model, the paper's
 * fitted Eq. 5 polynomials, the gated (Eq. 6) and clockless
 * estimates, and -- for the sizes where gate-level simulation is
 * practical -- measured activity-priced energies.  It finishes by
 * re-fitting a*N^3 + b*N^2 to the measured points, regenerating the
 * Eq. 5 coefficients.
 */

#include <chrono>
#include <iostream>

#include "rl/bio/edit_graph.h"
#include "rl/bio/sequence.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/core/race_network.h"
#include "rl/sim/stats.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/tech/area_model.h"
#include "rl/tech/energy_model.h"
#include "rl/tech/metrics.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using tech::CellLibrary;
using tech::ClockMode;
using tech::RaceCase;

namespace {

const std::vector<size_t> kSweep{4, 8, 12, 16, 20, 30, 40, 50, 60,
                                 70, 80, 90, 100};

void
areaPanel(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 5 area panel (" + lib.name + "): um^2 vs N");
    util::TextTable table({"N", "RaceLogic um2", "Systolic um2",
                           "race/sys"});
    for (size_t n : kSweep) {
        double race = tech::raceGridArea(lib, n, n, 2).totalUm2;
        double sys =
            tech::systolicArea(lib, Alphabet::dna(), n, n).totalUm2;
        table.row(n, race, sys, race / sys);
    }
    table.print(std::cout);
    std::cout << "(quadratic vs linear: Race Logic starts smaller and "
                 "crosses over at small N)\n";
}

void
latencyPanel(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 5 latency panel (" + lib.name +
                          "): ns vs N (measured cycles x period)");
    util::Rng rng(2024);
    core::RaceGridAligner racer(ScoreMatrix::dnaShortestPathInfMismatch());
    systolic::LiptonLoprestiArray sys_array(
        ScoreMatrix::dnaShortestPathInfMismatch());
    util::TextTable table({"N", "race best ns", "race worst ns",
                           "systolic ns", "sys/raceWorst"});
    for (size_t n : kSweep) {
        Sequence same = Sequence::random(rng, Alphabet::dna(), n);
        auto [wa, wb] = bio::worstCasePair(rng, Alphabet::dna(), n);
        uint64_t best_cycles = racer.align(same, same).latencyCycles;
        uint64_t worst_cycles = racer.align(wa, wb).latencyCycles;
        uint64_t sys_cycles = sys_array.align(wa, wb).cycles;
        double best = double(best_cycles) * lib.racePeriodNs;
        double worst = double(worst_cycles) * lib.racePeriodNs;
        double sys = double(sys_cycles) * lib.systolicPeriodNs;
        table.row(n, best, worst, sys, sys / worst);
    }
    table.print(std::cout);
}

void
energyPanel(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 5 energy panel (" + lib.name +
                          "): pJ per comparison vs N");
    util::Rng rng(7);
    systolic::LiptonLoprestiArray sys_array(
        ScoreMatrix::dnaShortestPathInfMismatch());
    util::TextTable table({"N", "race best", "race worst",
                           "fit5 best", "fit5 worst", "gated worst",
                           "clockless", "systolic"});
    for (size_t n : kSweep) {
        auto best = tech::raceAnalyticEnergy(lib, n, RaceCase::Best);
        auto worst = tech::raceAnalyticEnergy(lib, n, RaceCase::Worst);
        auto gated = tech::raceAnalyticEnergy(lib, n, RaceCase::Worst,
                                              ClockMode::Gated);
        auto clockless = tech::raceAnalyticEnergy(
            lib, n, RaceCase::Worst, ClockMode::Clockless);
        auto [wa, wb] = bio::worstCasePair(rng, Alphabet::dna(), n);
        auto sys = tech::systolicEnergyFromResult(
            lib, sys_array.align(wa, wb), Alphabet::dna());
        table.row(n, best.totalJ() * 1e12, worst.totalJ() * 1e12,
                  tech::paperFitEnergyPj(lib, RaceCase::Best, double(n)),
                  tech::paperFitEnergyPj(lib, RaceCase::Worst,
                                         double(n)),
                  gated.totalJ() * 1e12, clockless.totalJ() * 1e12,
                  sys.totalJ() * 1e12);
    }
    table.print(std::cout);

    // Long-range scaling rows (the paper plots to N = 1e6).
    util::TextTable scaling({"N", "race worst pJ", "gated pJ",
                             "clockless pJ", "systolic pJ"});
    for (size_t n : {100u, 1000u, 10000u, 100000u, 1000000u}) {
        auto worst = tech::raceAnalyticEnergy(lib, n, RaceCase::Worst);
        auto gated = tech::raceAnalyticEnergy(lib, n, RaceCase::Worst,
                                              ClockMode::Gated);
        auto clockless = tech::raceAnalyticEnergy(
            lib, n, RaceCase::Worst, ClockMode::Clockless);
        auto sys =
            tech::systolicAnalyticEnergy(lib, Alphabet::dna(), n, n);
        scaling.row(n, worst.totalJ() * 1e12, gated.totalJ() * 1e12,
                    clockless.totalJ() * 1e12, sys.totalJ() * 1e12);
    }
    std::cout << "\nLog-range scaling (analytic, as in the paper's "
                 "log-log panel):\n";
    scaling.print(std::cout);
}

void
simulatorThroughputPanel()
{
    // Not a paper panel, but the knob that sets how large a sweep
    // every other panel can afford: cells simulated per second on the
    // behavioral backend, bucket wavefront kernel vs the heap event
    // queue it replaced.
    util::printBanner(std::cout,
                      "Simulator throughput: bucket wavefront kernel "
                      "vs heap event queue (cells/s)");
    util::Rng rng(4242);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    core::RaceGridAligner racer(m);
    util::TextTable table({"N", "wavefront Mcells/s", "heap Mcells/s",
                           "speedup"});
    for (size_t n : {16u, 64u, 256u}) {
        Sequence a = Sequence::random(rng, Alphabet::dna(), n);
        Sequence b = Sequence::random(rng, Alphabet::dna(), n);
        const int reps = n >= 256 ? 4 : 64;
        auto time_s = [&](auto &&body) {
            auto start = std::chrono::steady_clock::now();
            for (int r = 0; r < reps; ++r)
                body();
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
        };
        double wavefront = time_s([&] { racer.align(a, b); });
        double heap = time_s([&] {
            bio::EditGraph eg = bio::makeEditGraph(a, b, m);
            core::raceDagEventDriven(eg.dag, {eg.source},
                                     core::RaceType::Or);
        });
        double cells = double(n) * double(n) * reps;
        table.row(n, cells / wavefront / 1e6, cells / heap / 1e6,
                  heap / wavefront);
    }
    table.print(std::cout);
}

void
refitEquation5(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Eq. 5 regeneration (" + lib.name +
                          "): fit a*N^3 + b*N^2 to gate-level "
                          "measured energy");
    util::Rng rng(99);
    std::vector<double> xs, ys_worst, ys_best;
    for (size_t n = 4; n <= 28; n += 4) {
        core::RaceGridCircuit fabric(Alphabet::dna(), n, n);
        auto [wa, wb] = bio::worstCasePair(rng, Alphabet::dna(), n);
        fabric.sim().clearActivity();
        fabric.align(wa, wb);
        double worst =
            tech::energyFromActivityJ(lib, fabric.sim().activity());
        Sequence same = Sequence::random(rng, Alphabet::dna(), n);
        fabric.sim().clearActivity();
        fabric.align(same, same);
        double best =
            tech::energyFromActivityJ(lib, fabric.sim().activity());
        xs.push_back(double(n));
        ys_worst.push_back(worst * 1e12);
        ys_best.push_back(best * 1e12);
    }
    auto cw = sim::monomialFit(xs, ys_worst, {3, 2});
    auto cb = sim::monomialFit(xs, ys_best, {3, 2});
    util::TextTable table({"coefficient", "measured fit", "paper Eq.5"});
    bool amis = lib.name == "AMIS";
    table.row("worst N^3", cw[3], amis ? 2.65 : 5.30);
    table.row("worst N^2", cw[2], amis ? 6.41 : 3.76);
    table.row("best  N^3", cb[3], amis ? 1.05 : 2.10);
    table.row("best  N^2", cb[2], amis ? 5.91 : 4.86);
    table.print(std::cout);
    std::cout << "(N^3 coefficients are the calibration anchor; N^2 "
                 "terms depend on data-activity detail)\n";
}

} // namespace

int
main()
{
    simulatorThroughputPanel();
    for (const CellLibrary *lib : CellLibrary::all()) {
        areaPanel(*lib);
        latencyPanel(*lib);
        energyPanel(*lib);
        refitEquation5(*lib);
    }
    return 0;
}
