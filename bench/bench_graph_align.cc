/**
 * @file
 * google-benchmark suite for the rl/pangraph workload: product-DAG
 * construction, the fused raced alignment (the GraphAlign hot path),
 * the materialized-DAG reference it is checked against, the graph-NW
 * oracle, traceback, and engine read-mapping batches on one cached
 * graph plan.
 *
 * The graph scales with the read: a random variation graph whose
 * backbone grows with range(0), read sampled from a walk with
 * Section 6-style mutation noise.  BM_GraphAlignRace/64,
 * BM_GraphAlignFused/64, and BM_GraphMapReadsBatch/1 are headline
 * benches (tools/bench_compare.py) -- refresh BENCH_baseline.json in
 * the PR that changes them.
 */

#include <benchmark/benchmark.h>

#include "rl/api/api.h"
#include "rl/pangraph/generate.h"
#include "rl/pangraph/graph_align_dp.h"
#include "rl/pangraph/graph_aligner.h"
#include "rl/util/random.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

namespace {

struct Workload {
    std::shared_ptr<const pangraph::VariationGraph> graph;
    Sequence read;

    explicit Workload(size_t backbone, uint64_t seed = 17)
        : read(Alphabet::dna())
    {
        util::Rng rng(seed);
        pangraph::VariationGraphParams params;
        params.backboneSegments = backbone;
        params.maxLabel = 8;
        params.snpDensity = 0.4;
        params.insertDensity = 0.2;
        params.deleteDensity = 0.2;
        graph = std::make_shared<pangraph::VariationGraph>(
            pangraph::randomVariationGraph(rng, Alphabet::dna(),
                                           params));
        read = pangraph::sampleRead(rng, *graph,
                                    bio::MutationModel::uniform(0.2));
    }
};

void
BM_GraphAlignBuild(benchmark::State &state)
{
    // Product-DAG construction alone: the per-read planning cost the
    // race pays on top of the cached graph compile.
    Workload w(size_t(state.range(0)));
    pangraph::GraphAligner aligner(w.graph,
                                   ScoreMatrix::dnaShortestPath());
    for (auto _ : state)
        benchmark::DoNotOptimize(pangraph::buildAlignmentGraph(
            aligner.compiled(), w.read, aligner.costs()));
}
BENCHMARK(BM_GraphAlignBuild)->Arg(16)->Arg(64);

void
BM_GraphAlignRace(benchmark::State &state)
{
    // The GraphAlign hot path: one read against a cached plan via
    // the default align() -- the fused kernel since PR 5, on the
    // wrapper's per-thread scratch, plus score recovery (headline
    // bench; BM_GraphAlignFused isolates the raw kernel sweep).
    Workload w(size_t(state.range(0)));
    pangraph::GraphAligner aligner(w.graph,
                                   ScoreMatrix::dnaShortestPath());
    for (auto _ : state)
        benchmark::DoNotOptimize(aligner.align(w.read));
    state.SetItemsProcessed(
        int64_t(state.iterations()) * int64_t(w.read.size()) *
        int64_t(w.graph->totalLabelLength()));
}
BENCHMARK(BM_GraphAlignRace)->Arg(16)->Arg(64);

void
BM_GraphAlignFused(benchmark::State &state)
{
    // Steady-state fused sweep: calendar arena and weight rows
    // reused across reads, the per-thread shape of the engine's
    // read-mapping batch body (headline bench).
    Workload w(size_t(state.range(0)));
    pangraph::GraphAligner aligner(w.graph,
                                   ScoreMatrix::dnaShortestPath());
    pangraph::GraphAlignScratch scratch;
    for (auto _ : state)
        benchmark::DoNotOptimize(pangraph::raceAlignmentGrid(
            aligner.compiled(), w.read, aligner.costs(),
            sim::kTickInfinity, scratch));
    state.SetItemsProcessed(
        int64_t(state.iterations()) * int64_t(w.read.size()) *
        int64_t(w.graph->totalLabelLength()));
}
BENCHMARK(BM_GraphAlignFused)->Arg(16)->Arg(64);

void
BM_GraphAlignReference(benchmark::State &state)
{
    // The materialized path the fused kernel replaced: build the
    // product graph::Dag, then race it on the general CSR kernel.
    // Kept as the before number (and the gate-level synthesis path).
    Workload w(size_t(state.range(0)));
    pangraph::GraphAligner aligner(w.graph,
                                   ScoreMatrix::dnaShortestPath());
    for (auto _ : state)
        benchmark::DoNotOptimize(aligner.align(pangraph::buildAlignmentGraph(
            aligner.compiled(), w.read, aligner.costs())));
}
BENCHMARK(BM_GraphAlignReference)->Arg(16)->Arg(64);

void
BM_GraphAlignOracle(benchmark::State &state)
{
    // The software graph-NW baseline over the same workload.
    Workload w(size_t(state.range(0)));
    ScoreMatrix costs = ScoreMatrix::dnaShortestPath();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pangraph::graphAlignDp(*w.graph, w.read, costs));
}
BENCHMARK(BM_GraphAlignOracle)->Arg(16)->Arg(64);

void
BM_GraphAlignTraceback(benchmark::State &state)
{
    // (walk, CIGAR) reconstruction alone: race once outside the
    // loop, then walk tight edges of the arrival vector per
    // iteration.  (It used to re-run build+race per iteration, which
    // made the row meaningless as a traceback number.)
    Workload w(size_t(state.range(0)));
    pangraph::GraphAligner aligner(w.graph,
                                   ScoreMatrix::dnaShortestPath());
    pangraph::GraphRaceResult raced = aligner.align(w.read);
    for (auto _ : state)
        benchmark::DoNotOptimize(pangraph::mappingFromArrival(
            aligner.compiled(), w.read, aligner.costs(),
            raced.arrival));
}
BENCHMARK(BM_GraphAlignTraceback)->Arg(16)->Arg(64);

void
BM_GraphMapReadsBatch(benchmark::State &state)
{
    // Engine read-mapping: 64 reads against one cached plan, with a
    // screening threshold; range = worker threads (flat on 1-CPU
    // hosts -- see docs/performance.md).
    Workload w(24);
    util::Rng rng(5);
    std::vector<Sequence> reads;
    for (int i = 0; i < 64; ++i)
        reads.push_back(pangraph::sampleRead(
            rng, *w.graph, bio::MutationModel::uniform(0.25)));
    const bio::Score threshold =
        static_cast<bio::Score>(w.graph->spelledLengthRange().second +
                                8);
    api::EngineConfig cfg;
    cfg.workerThreads = size_t(state.range(0));
    cfg.withEstimates = false;
    api::RaceEngine engine(cfg);
    for (auto _ : state) {
        auto outcome = engine.mapReads(w.graph,
                                       ScoreMatrix::dnaShortestPath(),
                                       threshold, reads);
        benchmark::DoNotOptimize(outcome.results.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(reads.size()));
}
BENCHMARK(BM_GraphMapReadsBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

} // namespace
