/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernels: the
 * event-driven race solver, the gate-level synchronous simulator,
 * the systolic engine, and the reference DP -- the knobs that set
 * how large a sweep the figure benches can afford.
 */

#include <benchmark/benchmark.h>

#include "rl/api/api.h"
#include "rl/bio/align_dp.h"
#include "rl/core/generalized.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/util/random.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

namespace {

std::pair<Sequence, Sequence>
randomPair(uint64_t seed, size_t n)
{
    util::Rng rng(seed);
    return {Sequence::random(rng, Alphabet::dna(), n),
            Sequence::random(rng, Alphabet::dna(), n)};
}

void
BM_ReferenceDp(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(1, n);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    for (auto _ : state)
        benchmark::DoNotOptimize(bio::globalScore(a, b, m));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_ReferenceDp)->Arg(16)->Arg(64)->Arg(256);

void
BM_EventDrivenRace(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(2, n);
    core::RaceGridAligner racer(
        ScoreMatrix::dnaShortestPathInfMismatch());
    for (auto _ : state)
        benchmark::DoNotOptimize(racer.align(a, b).score);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_EventDrivenRace)->Arg(16)->Arg(64)->Arg(256);

void
BM_GateLevelRaceGrid(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(3, n);
    core::RaceGridCircuit fabric(Alphabet::dna(), n, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(fabric.align(a, b).score);
    // Gate evaluations per comparison ~ gates x cycles.
    state.SetItemsProcessed(
        int64_t(state.iterations()) *
        int64_t(fabric.netlist().gateCount()) * int64_t(2 * n));
}
BENCHMARK(BM_GateLevelRaceGrid)->Arg(8)->Arg(16)->Arg(32);

void
BM_SystolicArray(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(4, n);
    systolic::LiptonLoprestiArray array(
        ScoreMatrix::dnaShortestPathInfMismatch());
    for (auto _ : state)
        benchmark::DoNotOptimize(array.align(a, b).score);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(3 * n) * int64_t(2 * n + 1));
}
BENCHMARK(BM_SystolicArray)->Arg(16)->Arg(64)->Arg(256);

void
BM_GeneralizedBehavioral(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    util::Rng rng(5);
    Sequence a = Sequence::random(rng, Alphabet::protein(), n);
    Sequence b = Sequence::random(rng, Alphabet::protein(), n);
    core::GeneralizedAligner aligner(ScoreMatrix::blosum62());
    for (auto _ : state)
        benchmark::DoNotOptimize(aligner.align(a, b).similarityScore);
}
BENCHMARK(BM_GeneralizedBehavioral)->Arg(16)->Arg(64);

void
BM_GateLevelGeneralizedBuild(benchmark::State &state)
{
    // Fabric construction cost (netlist synthesis), BLOSUM62 cells.
    core::GeneralizedAligner model(ScoreMatrix::blosum62());
    for (auto _ : state) {
        core::GeneralizedGridCircuit fabric(model.form().costs, 2, 2);
        benchmark::DoNotOptimize(fabric.netlist().gateCount());
    }
}
BENCHMARK(BM_GateLevelGeneralizedBuild);

void
BM_ApiEngineSolveCached(benchmark::State &state)
{
    // Facade overhead on the hot path: same-shape solves after the
    // first all hit the plan cache, so this measures solve() against
    // BM_EventDrivenRace's bare-kernel numbers.
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(6, n);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    api::EngineConfig config;
    config.withEstimates = false;
    api::RaceEngine engine(config);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.solve(api::RaceProblem::pairwiseAlignment(m, a, b))
                .score);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_ApiEngineSolveCached)->Arg(16)->Arg(64)->Arg(256);

void
BM_ApiEnginePlanMiss(benchmark::State &state)
{
    // Cold-plan cost: caching disabled, every solve replans
    // (similarity conversion included -- BLOSUM62 input).
    util::Rng rng(7);
    Sequence a = Sequence::random(rng, Alphabet::protein(), 16);
    Sequence b = Sequence::random(rng, Alphabet::protein(), 16);
    ScoreMatrix blosum = ScoreMatrix::blosum62();
    api::EngineConfig config;
    config.planCacheCapacity = 0;
    config.withEstimates = false;
    api::RaceEngine engine(config);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine
                .solve(api::RaceProblem::generalizedAlignment(blosum, a,
                                                              b))
                .score);
}
BENCHMARK(BM_ApiEnginePlanMiss);

} // namespace
