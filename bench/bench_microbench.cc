/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernels: the
 * event-driven race solver, the gate-level synchronous simulator,
 * the systolic engine, and the reference DP -- the knobs that set
 * how large a sweep the figure benches can afford.
 */

#include <benchmark/benchmark.h>

#include "rl/api/api.h"
#include "rl/bio/align_dp.h"
#include "rl/bio/edit_graph.h"
#include "rl/core/generalized.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/core/wavefront.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/util/random.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

namespace {

std::pair<Sequence, Sequence>
randomPair(uint64_t seed, size_t n)
{
    util::Rng rng(seed);
    return {Sequence::random(rng, Alphabet::dna(), n),
            Sequence::random(rng, Alphabet::dna(), n)};
}

void
BM_ReferenceDp(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(1, n);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    for (auto _ : state)
        benchmark::DoNotOptimize(bio::globalScore(a, b, m));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_ReferenceDp)->Arg(16)->Arg(64)->Arg(256);

void
BM_EventDrivenRace(benchmark::State &state)
{
    // The behavioral race-grid hot path (name kept across PRs for the
    // perf trajectory).  Since the wavefront-kernel PR this routes
    // through core::raceEditGrid -- compare BM_HeapEventQueueRace,
    // the pre-kernel pipeline, for the before/after.
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(2, n);
    core::RaceGridAligner racer(
        ScoreMatrix::dnaShortestPathInfMismatch());
    for (auto _ : state)
        benchmark::DoNotOptimize(racer.align(a, b).score);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_EventDrivenRace)->Arg(16)->Arg(64)->Arg(256);

void
BM_HeapEventQueueRace(benchmark::State &state)
{
    // The pre-kernel pipeline: materialize the edit graph, race it on
    // the heap-scheduled event queue (one std::function per edge
    // arrival).  Kept as the baseline the wavefront kernel is
    // measured against.
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(2, n);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    for (auto _ : state) {
        bio::EditGraph eg = bio::makeEditGraph(a, b, m);
        benchmark::DoNotOptimize(
            core::raceDagEventDriven(eg.dag, {eg.source},
                                     core::RaceType::Or)
                .at(eg.sink)
                .rawTime());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_HeapEventQueueRace)->Arg(16)->Arg(64)->Arg(256);

void
BM_WavefrontKernelDag(benchmark::State &state)
{
    // The general CSR bucket kernel on a prebuilt DAG (the DTW /
    // DAG-path substrate), isolating kernel cost from graph
    // construction.
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(2, n);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    bio::EditGraph eg = bio::makeEditGraph(a, b, m);
    core::WavefrontRaceKernel kernel(eg.dag);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kernel.race({eg.source}, core::RaceType::Or)
                .at(eg.sink)
                .rawTime());
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_WavefrontKernelDag)->Arg(16)->Arg(64)->Arg(256);

void
BM_ScreeningRaceWithHorizon(benchmark::State &state)
{
    // Section 6 in the simulator itself: an unrelated pair races only
    // to the threshold cycle, not to grid drain.
    size_t n = size_t(state.range(0));
    util::Rng rng(8);
    Sequence a = Sequence::random(rng, Alphabet::dna(), n);
    Sequence b = Sequence::random(rng, Alphabet::dna(), n);
    core::RaceGridAligner racer(
        ScoreMatrix::dnaShortestPathInfMismatch());
    const sim::Tick threshold = n / 2;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            racer.align(a, b, threshold).completed);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_ScreeningRaceWithHorizon)->Arg(64)->Arg(256);

void
BM_GateLevelRaceGrid(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(3, n);
    core::RaceGridCircuit fabric(Alphabet::dna(), n, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(fabric.align(a, b).score);
    // Gate evaluations per comparison ~ gates x cycles.
    state.SetItemsProcessed(
        int64_t(state.iterations()) *
        int64_t(fabric.netlist().gateCount()) * int64_t(2 * n));
}
BENCHMARK(BM_GateLevelRaceGrid)->Arg(8)->Arg(16)->Arg(32);

void
BM_SyncSimGrid(benchmark::State &state)
{
    // The interpretive reference: full O(gates x cycles) settle
    // loops.  The before-number of the compiled-kernel contrast.
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(3, n);
    core::RaceGridCircuit fabric(Alphabet::dna(), n, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(fabric.alignReference(a, b).score);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_SyncSimGrid)->Arg(16)->Arg(32)->Arg(64);

void
BM_CompiledSimGrid(benchmark::State &state)
{
    // The levelized event-driven kernel on the same fabric: only the
    // wavefront's dirty frontier is re-evaluated each cycle.
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(3, n);
    core::RaceGridCircuit fabric(Alphabet::dna(), n, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(fabric.align(a, b).score);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_CompiledSimGrid)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void
BM_CompiledSim64Lane(benchmark::State &state)
{
    // 64 independent comparisons per simulation word: the gate-level
    // database-screening configuration.  items processed counts all
    // 64 comparisons, so items/sec is directly comparable to
    // BM_CompiledSimGrid's per-comparison rate.
    size_t n = size_t(state.range(0));
    util::Rng rng(10);
    core::RaceGridCircuit fabric(Alphabet::dna(), n, n);
    std::vector<Sequence> as, bs;
    std::vector<core::LanePair> lanes;
    for (unsigned l = 0; l < 64; ++l) {
        as.push_back(Sequence::random(rng, Alphabet::dna(), n));
        bs.push_back(Sequence::random(rng, Alphabet::dna(), n));
    }
    for (unsigned l = 0; l < 64; ++l)
        lanes.push_back({&as[l], &bs[l]});
    for (auto _ : state)
        benchmark::DoNotOptimize(fabric.alignLanes(lanes).cyclesRun);
    state.SetItemsProcessed(int64_t(state.iterations()) * 64 *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_CompiledSim64Lane)->Arg(16)->Arg(32)->Arg(64);

void
BM_SystolicArray(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(4, n);
    systolic::LiptonLoprestiArray array(
        ScoreMatrix::dnaShortestPathInfMismatch());
    for (auto _ : state)
        benchmark::DoNotOptimize(array.align(a, b).score);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(3 * n) * int64_t(2 * n + 1));
}
BENCHMARK(BM_SystolicArray)->Arg(16)->Arg(64)->Arg(256);

void
BM_GeneralizedBehavioral(benchmark::State &state)
{
    size_t n = size_t(state.range(0));
    util::Rng rng(5);
    Sequence a = Sequence::random(rng, Alphabet::protein(), n);
    Sequence b = Sequence::random(rng, Alphabet::protein(), n);
    core::GeneralizedAligner aligner(ScoreMatrix::blosum62());
    for (auto _ : state)
        benchmark::DoNotOptimize(aligner.align(a, b).similarityScore);
}
BENCHMARK(BM_GeneralizedBehavioral)->Arg(16)->Arg(64);

void
BM_GateLevelGeneralizedBuild(benchmark::State &state)
{
    // Fabric construction cost (netlist synthesis), BLOSUM62 cells.
    core::GeneralizedAligner model(ScoreMatrix::blosum62());
    for (auto _ : state) {
        core::GeneralizedGridCircuit fabric(model.form().costs, 2, 2);
        benchmark::DoNotOptimize(fabric.netlist().gateCount());
    }
}
BENCHMARK(BM_GateLevelGeneralizedBuild);

void
BM_ApiEngineSolveCached(benchmark::State &state)
{
    // Facade overhead on the hot path: same-shape solves after the
    // first all hit the plan cache, so this measures solve() against
    // BM_EventDrivenRace's bare-kernel numbers.
    size_t n = size_t(state.range(0));
    auto [a, b] = randomPair(6, n);
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    api::EngineConfig config;
    config.withEstimates = false;
    api::RaceEngine engine(config);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.solve(api::RaceProblem::pairwiseAlignment(m, a, b))
                .score);
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(n) * int64_t(n));
}
BENCHMARK(BM_ApiEngineSolveCached)->Arg(16)->Arg(64)->Arg(256);

void
BM_SolveBatchThreads(benchmark::State &state)
{
    // Thread-pool scaling of the batch screening front door: one
    // fixed workload, worker count swept.  Near-linear up to the
    // physical cores is the target; UseRealTime because the work
    // spreads across the pool.
    const size_t threads = size_t(state.range(0));
    const size_t entries = 64;
    util::Rng rng(9);
    auto wl = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), 64, entries, 0.2,
        bio::MutationModel::uniform(0.08));
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    std::vector<api::RaceProblem> problems;
    for (const Sequence &candidate : wl.database)
        problems.push_back(api::RaceProblem::thresholdScreen(
            m, 80, wl.query, candidate));

    api::EngineConfig config;
    config.workerThreads = threads;
    config.withEstimates = false;
    api::RaceEngine engine(config);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.solveBatch(problems).busyCycles());
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(entries));
}
BENCHMARK(BM_SolveBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

void
BM_ApiEnginePlanMiss(benchmark::State &state)
{
    // Cold-plan cost: caching disabled, every solve replans
    // (similarity conversion included -- BLOSUM62 input).
    util::Rng rng(7);
    Sequence a = Sequence::random(rng, Alphabet::protein(), 16);
    Sequence b = Sequence::random(rng, Alphabet::protein(), 16);
    ScoreMatrix blosum = ScoreMatrix::blosum62();
    api::EngineConfig config;
    config.planCacheCapacity = 0;
    config.withEstimates = false;
    api::RaceEngine engine(config);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine
                .solve(api::RaceProblem::generalizedAlignment(blosum, a,
                                                              b))
                .score);
}
BENCHMARK(BM_ApiEnginePlanMiss);

} // namespace
