/**
 * @file
 * Reproduces Figure 2: the longest-path (a) and shortest-path (b)
 * DNA score matrices, the BLOSUM62 protein matrix (c), plus the
 * Section 5 race-ready conversions of the protein matrices.
 */

#include <iostream>

#include "rl/bio/score_convert.h"
#include "rl/bio/score_matrix.h"
#include "rl/util/bitops.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::ScoreMatrix;

int
main()
{
    util::printBanner(std::cout,
                      "Fig. 2a: DNA longest-path (similarity) matrix");
    std::cout << ScoreMatrix::dnaLongestPath().toString();

    util::printBanner(std::cout,
                      "Fig. 2b: DNA shortest-path (cost) matrix");
    std::cout << ScoreMatrix::dnaShortestPath().toString();

    util::printBanner(std::cout,
                      "Synthesized variant: mismatch raised to "
                      "infinity (missing diagonal edge)");
    std::cout << ScoreMatrix::dnaShortestPathInfMismatch().toString();

    util::printBanner(std::cout, "Fig. 2c: BLOSUM62 (similarity)");
    std::cout << ScoreMatrix::blosum62().toString();

    for (const char *name : {"BLOSUM62", "PAM250"}) {
        ScoreMatrix sim = std::string(name) == "BLOSUM62"
                              ? ScoreMatrix::blosum62()
                              : ScoreMatrix::pam250();
        auto form = bio::toShortestPathForm(sim);
        util::printBanner(std::cout,
                          std::string("Section 5 conversion of ") +
                              name + " to race-ready costs");
        util::TextTable info({"bias b", "lambda", "min weight",
                              "dynamic range N_DR",
                              "counter bits"});
        info.row(form.bias, form.lambda, form.costs.minFinite(),
                 form.costs.dynamicRange(),
                 (int64_t)util::bitsForValue(
                     (uint64_t)form.costs.dynamicRange()));
        info.print(std::cout);
        std::cout << form.costs.toString();
    }
    return 0;
}
