/**
 * @file
 * Reproduces Figure 7 / Eq. 6 / Eq. 7: the clock-gating granularity
 * trade-off.  Sweeps the multi-cell-region side m for several string
 * lengths, prints the Eq. 6 energy curve, the closed-form Eq. 7
 * optimum against a numeric argmin, and cross-checks the analytic
 * model against measured per-region windows from real races.
 */

#include <cmath>
#include <iostream>

#include "rl/bio/sequence.h"
#include "rl/core/clock_gating.h"
#include "rl/core/gated_grid_circuit.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/tech/energy_model.h"
#include "rl/util/random.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using tech::CellLibrary;
using tech::ClockMode;
using tech::RaceCase;

int
main()
{
    const CellLibrary &lib = CellLibrary::amis();

    for (size_t n : {16u, 32u, 64u, 128u}) {
        util::printBanner(
            std::cout,
            util::format("Eq. 6 energy vs gating granularity m, "
                         "N = %zu (AMIS, worst case)",
                         n));
        util::TextTable table({"m", "clock pJ", "gate overhead pJ",
                               "data pJ", "total pJ"});
        for (size_t m = 1; m <= n; m *= 2) {
            auto e = tech::raceAnalyticEnergy(lib, n, RaceCase::Worst,
                                              ClockMode::Gated, m);
            table.row(m, e.clockJ * 1e12, e.gatingJ * 1e12,
                      e.dataJ * 1e12, e.totalJ() * 1e12);
        }
        auto ungated = tech::raceAnalyticEnergy(lib, n, RaceCase::Worst);
        table.row("inf (ungated)", ungated.clockJ * 1e12, 0.0,
                  ungated.dataJ * 1e12, ungated.totalJ() * 1e12);
        table.print(std::cout);
        double closed = tech::optimalGatingGranularity(lib, n);
        size_t numeric = tech::numericOptimalGranularity(lib, n);
        std::cout << "Eq. 7 closed-form m* = " << closed
                  << "  |  numeric argmin m = " << numeric << '\n';
    }

    util::printBanner(std::cout,
                      "Measured region windows vs the 2m-2 analytic "
                      "crossing time (real worst-case races)");
    util::Rng rng(7);
    core::RaceGridAligner racer(
        ScoreMatrix::dnaShortestPathInfMismatch());
    util::TextTable measured({"N", "m", "max window cycles",
                              "analytic 2m-2", "gated/ungated clock"});
    for (size_t n : {16u, 32u, 64u}) {
        auto [a, b] = bio::worstCasePair(rng, Alphabet::dna(), n);
        core::RaceGridResult race = racer.align(a, b);
        for (size_t m : {2u, 4u, 8u}) {
            core::GatingAnalysis g = core::analyzeClockGating(race, m);
            sim::Tick widest = 0;
            for (size_t r = 0; r < g.windows.rows(); ++r)
                for (size_t c = 0; c < g.windows.cols(); ++c)
                    widest = std::max(widest,
                                      g.windows.at(r, c).activeCycles());
            measured.row(n, m, widest, 2 * m - 2,
                         g.clockActivityRatio());
        }
    }
    measured.print(std::cout);
    std::cout << "(measured windows = 2m-2 crossing + wake/latch "
                 "edges; the H-tree of Fig. 7c gates whole regions)\n";

    util::printBanner(std::cout,
                      "Gate-level gating: real enable logic "
                      "(GatedRaceGridCircuit) vs un-gated fabric");
    util::TextTable gate_level({"N", "m", "score ok",
                                "ungated DFF clocks",
                                "gated DFF clocks", "ratio",
                                "gating gates"});
    for (size_t n : {8u, 12u, 16u}) {
        auto [a, b] = bio::worstCasePair(rng, Alphabet::dna(), n);
        core::RaceGridCircuit plain(Alphabet::dna(), n, n);
        plain.sim().clearActivity();
        auto r_plain = plain.align(a, b);
        for (size_t m : {2u, 4u}) {
            core::GatedRaceGridCircuit gated(Alphabet::dna(), n, n, m);
            gated.sim().clearActivity();
            auto r_gated = gated.align(a, b);
            uint64_t ungated_clocks =
                plain.sim().activity().clockedDffCycles;
            uint64_t gated_clocks =
                gated.sim().activity().clockedDffCycles;
            gate_level.row(
                n, m,
                (r_gated.completed &&
                 r_gated.score == r_plain.score)
                    ? "yes"
                    : "NO",
                ungated_clocks, gated_clocks,
                double(gated_clocks) / double(ungated_clocks),
                gated.gatingGateCount());
        }
    }
    gate_level.print(std::cout);
    std::cout << "(scores are bit-identical; only the clock activity "
                 "changes -- Eq. 6 realized in gates)\n";
    return 0;
}
