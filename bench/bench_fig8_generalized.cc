/**
 * @file
 * Reproduces Figure 8 and the Section 5 generalized-architecture
 * analysis through the unified api::RaceEngine: the generalized
 * cell's sizing for BLOSUM62/PAM250, its measured gate inventory
 * under both delay encodings, a gate-level validation run (the
 * engine's GateLevel backend cross-checks the synthesized fabric
 * against the behavioral race), and the similarity-to-latency mapping
 * that makes the OR race meaningful for protein matrices.
 */

#include <iostream>

#include "rl/api/api.h"
#include "rl/bio/align_dp.h"
#include "rl/bio/score_convert.h"
#include "rl/core/generalized.h"
#include "rl/tech/area_model.h"
#include "rl/tech/cell_library.h"
#include "rl/util/random.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::DelayEncoding;
using core::GeneralizedCellSpec;
using core::GeneralizedGridCircuit;

int
main()
{
    const tech::CellLibrary &lib = tech::CellLibrary::amis();

    for (const char *name : {"BLOSUM62", "PAM250"}) {
        ScoreMatrix sim_matrix = std::string(name) == "BLOSUM62"
                                     ? ScoreMatrix::blosum62()
                                     : ScoreMatrix::pam250();
        bio::ShortestPathForm form = bio::toShortestPathForm(sim_matrix);
        GeneralizedCellSpec spec =
            GeneralizedCellSpec::fromMatrix(form.costs);
        util::printBanner(std::cout,
                          std::string("Generalized cell sizing for ") +
                              name);
        util::TextTable sizing({"N_DR", "counter bits", "symbol bits",
                                "distinct pair weights",
                                "distinct gap weights"});
        sizing.row(spec.dynamicRange, spec.counterBits,
                   spec.symbolBits, spec.distinctPairWeights.size(),
                   spec.distinctGapWeights.size());
        sizing.print(std::cout);

        util::TextTable inv({"encoding", "DFFs", "muxes", "total gates",
                             "cell area um2"});
        for (auto enc : {DelayEncoding::OneHot, DelayEncoding::Binary}) {
            auto counts =
                GeneralizedGridCircuit::cellInventory(form.costs, enc);
            size_t total = 0;
            for (size_t c : counts)
                total += c;
            inv.row(enc == DelayEncoding::OneHot ? "one-hot chain"
                                                 : "binary counter",
                    counts[size_t(circuit::GateType::Dff)],
                    counts[size_t(circuit::GateType::Mux)], total,
                    lib.areaOfInventory(counts));
        }
        inv.print(std::cout);
    }

    util::printBanner(std::cout,
                      "Gate-level validation: 3x3 generalized fabric "
                      "on a BLOSUM62-converted matrix (engine "
                      "GateLevel backend, one cached plan)");
    util::Rng rng(8);
    api::RaceEngine behavioral;
    api::EngineConfig hardware;
    hardware.backend = api::BackendKind::GateLevel;
    api::RaceEngine gateEngine(hardware);
    ScoreMatrix blosum = ScoreMatrix::blosum62();
    util::TextTable runs({"pair", "gate-level cost", "behavioral cost",
                          "recovered similarity", "DP similarity"});
    for (int trial = 0; trial < 4; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::protein(), 3);
        Sequence b = Sequence::random(rng, Alphabet::protein(), 3);
        api::RaceProblem problem =
            api::RaceProblem::generalizedAlignment(blosum, a, b);
        // solve() on the GateLevel backend asserts fabric == model.
        api::RaceResult hw = gateEngine.solve(problem);
        api::RaceResult sw = behavioral.solve(problem);
        runs.row(a.str() + "/" + b.str(), hw.racedCost, sw.racedCost,
                 sw.score, bio::globalScore(a, b, blosum));
    }
    runs.print(std::cout);
    std::cout << "fabric plans built by the gate-level engine: "
              << gateEngine.stats().plansBuilt << " for "
              << gateEngine.stats().solves
              << " runs (the 3x3 netlist is synthesized once and "
                 "reused)\n";

    util::printBanner(std::cout,
                      "Similarity -> latency mapping (higher "
                      "similarity = earlier sink arrival)");
    util::TextTable lat({"substitution rate", "mean latency cycles",
                         "mean similarity"});
    for (double rate : {0.0, 0.1, 0.3, 0.6, 1.0}) {
        double latency = 0.0, similarity = 0.0;
        const int trials = 10;
        for (int t = 0; t < trials; ++t) {
            Sequence a = Sequence::random(rng, Alphabet::protein(), 16);
            Sequence b = mutate(rng, a,
                                bio::MutationModel{rate, 0.0, 0.0});
            auto r = behavioral.solve(
                api::RaceProblem::generalizedAlignment(blosum, a, b));
            latency += double(r.latencyCycles) / trials;
            similarity += double(r.score) / trials;
        }
        lat.row(rate, latency, similarity);
    }
    lat.print(std::cout);
    return 0;
}
