/**
 * @file
 * Reproduces Figure 8 and the Section 5 generalized-architecture
 * analysis: the generalized cell's sizing for BLOSUM62/PAM250, its
 * measured gate inventory under both delay encodings, a gate-level
 * validation run, and the similarity-to-latency mapping that makes
 * the OR race meaningful for protein matrices.
 */

#include <iostream>

#include "rl/bio/align_dp.h"
#include "rl/core/generalized.h"
#include "rl/tech/area_model.h"
#include "rl/tech/cell_library.h"
#include "rl/util/random.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using core::DelayEncoding;
using core::GeneralizedAligner;
using core::GeneralizedGridCircuit;

int
main()
{
    const tech::CellLibrary &lib = tech::CellLibrary::amis();

    for (const char *name : {"BLOSUM62", "PAM250"}) {
        ScoreMatrix sim_matrix = std::string(name) == "BLOSUM62"
                                     ? ScoreMatrix::blosum62()
                                     : ScoreMatrix::pam250();
        GeneralizedAligner aligner(sim_matrix);
        const auto &spec = aligner.spec();
        util::printBanner(std::cout,
                          std::string("Generalized cell sizing for ") +
                              name);
        util::TextTable sizing({"N_DR", "counter bits", "symbol bits",
                                "distinct pair weights",
                                "distinct gap weights"});
        sizing.row(spec.dynamicRange, spec.counterBits,
                   spec.symbolBits, spec.distinctPairWeights.size(),
                   spec.distinctGapWeights.size());
        sizing.print(std::cout);

        util::TextTable inv({"encoding", "DFFs", "muxes", "total gates",
                             "cell area um2"});
        for (auto enc : {DelayEncoding::OneHot, DelayEncoding::Binary}) {
            auto counts = GeneralizedGridCircuit::cellInventory(
                aligner.form().costs, enc);
            size_t total = 0;
            for (size_t c : counts)
                total += c;
            inv.row(enc == DelayEncoding::OneHot ? "one-hot chain"
                                                 : "binary counter",
                    counts[size_t(circuit::GateType::Dff)],
                    counts[size_t(circuit::GateType::Mux)], total,
                    lib.areaOfInventory(counts));
        }
        inv.print(std::cout);
    }

    util::printBanner(std::cout,
                      "Gate-level validation: 3x3 generalized fabric "
                      "on a BLOSUM62-converted matrix");
    util::Rng rng(8);
    GeneralizedAligner model(ScoreMatrix::blosum62());
    GeneralizedGridCircuit fabric(model.form().costs, 3, 3);
    util::TextTable runs({"pair", "gate-level cost", "behavioral cost",
                          "recovered similarity", "DP similarity"});
    for (int trial = 0; trial < 4; ++trial) {
        Sequence a = Sequence::random(rng, Alphabet::protein(), 3);
        Sequence b = Sequence::random(rng, Alphabet::protein(), 3);
        auto hw = fabric.align(a, b);
        auto sw = model.align(a, b);
        runs.row(a.str() + "/" + b.str(), hw.score, sw.racedCost,
                 sw.similarityScore,
                 bio::globalScore(a, b, ScoreMatrix::blosum62()));
    }
    runs.print(std::cout);
    std::cout << "fabric gates: " << fabric.netlist().gateCount()
              << " (each protein cell carries the Fig. 8 counter + "
                 "taps + mux + set-on-arrival per edge)\n";

    util::printBanner(std::cout,
                      "Similarity -> latency mapping (higher "
                      "similarity = earlier sink arrival)");
    util::TextTable lat({"substitution rate", "mean latency cycles",
                         "mean similarity"});
    for (double rate : {0.0, 0.1, 0.3, 0.6, 1.0}) {
        double latency = 0.0, similarity = 0.0;
        const int trials = 10;
        for (int t = 0; t < trials; ++t) {
            Sequence a = Sequence::random(rng, Alphabet::protein(), 16);
            Sequence b = mutate(rng, a,
                                bio::MutationModel{rate, 0.0, 0.0});
            auto r = model.align(a, b);
            latency += double(r.latencyCycles) / trials;
            similarity += double(r.similarityScore) / trials;
        }
        lat.row(rate, latency, similarity);
    }
    lat.print(std::cout);
    return 0;
}
