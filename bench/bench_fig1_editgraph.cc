/**
 * @file
 * Reproduces Figure 1: the two example alignments of P = ACTGAGA and
 * Q = GATTCGA, their alignment matrices, and the edit-graph view
 * (node/edge counts and the number of alignments the race explores
 * in parallel).
 */

#include <iostream>

#include "rl/bio/align_dp.h"
#include "rl/bio/edit_graph.h"
#include "rl/bio/score_matrix.h"
#include "rl/graph/paths.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

namespace {

/** Fig. 1b/1d: running symbol counts per aligned column. */
void
printAlignmentMatrix(const std::string &row_a, const std::string &row_b)
{
    auto counts = [](const std::string &row) {
        std::string out;
        int count = 0;
        for (char ch : row) {
            if (ch != '-')
                ++count;
            out += util::format("%3d", count);
        }
        return out;
    };
    std::cout << "P " << counts(row_a) << "\nQ " << counts(row_b)
              << "\n";
}

} // namespace

int
main()
{
    Sequence p(Alphabet::dna(), "ACTGAGA");
    Sequence q(Alphabet::dna(), "GATTCGA");

    util::printBanner(std::cout,
                      "Fig. 1a/1b: optimal alignment of P and Q "
                      "(Fig. 2b costs) and its alignment matrix");
    auto best = bio::globalAlign(p, q, ScoreMatrix::dnaShortestPath());
    std::cout << "P " << best.alignedA << "\nQ " << best.alignedB
              << "\n\n";
    printAlignmentMatrix(best.alignedA, best.alignedB);
    util::TextTable stats({"matches", "mismatches", "indels", "cost"});
    stats.row(best.matches, best.mismatches, best.indels, best.score);
    stats.print(std::cout);

    util::printBanner(std::cout,
                      "Fig. 1c/1d: the worst allowed alignment "
                      "(delete P entirely, insert Q)");
    std::string worst_a = p.str() + std::string(q.size(), '-');
    std::string worst_b = std::string(p.size(), '-') + q.str();
    std::cout << "P " << worst_a << "\nQ " << worst_b << "\n\n";
    printAlignmentMatrix(worst_a, worst_b);
    std::cout << "columns = N + M = " << p.size() + q.size()
              << " (the maximum; 'can never exceed it')\n";

    util::printBanner(std::cout, "Fig. 1e: the edit graph");
    bio::EditGraph eg =
        bio::makeEditGraph(p, q, ScoreMatrix::dnaShortestPath());
    util::TextTable graph_stats(
        {"nodes", "edges", "alignments (paths)", "optimal cost"});
    uint64_t paths = graph::countPaths(eg.dag, eg.source, eg.sink);
    auto dp = graph::solveDag(eg.dag, {eg.source},
                              graph::Objective::Shortest);
    graph_stats.row(eg.dag.nodeCount(), eg.dag.edgeCount(), paths,
                    dp.distance[eg.sink]);
    graph_stats.print(std::cout);
    std::cout << "(every one of those " << paths
              << " alignments races simultaneously in hardware)\n";
    return 0;
}
