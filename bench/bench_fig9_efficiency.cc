/**
 * @file
 * Reproduces Figure 9 (AMIS library): (a) throughput per cm^2 vs N,
 * (b) power density vs N against the ITRS 200 W/cm^2 ceiling, and
 * (c) the energy-delay scatter at N = 30.
 */

#include <iostream>

#include "rl/tech/metrics.h"
#include "rl/util/table.h"

using namespace racelogic;
using tech::CellLibrary;
using tech::ClockMode;
using tech::DesignPoint;
using tech::RaceCase;

namespace {

const std::vector<size_t> kSweep{4, 8, 12, 16, 20, 30, 40, 50, 60,
                                 70, 80, 90, 100};

void
throughputPanel(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 9a: throughput (patterns/sec/cm^2) vs N, " +
                          lib.name);
    util::TextTable table({"N", "race best", "race worst", "systolic",
                           "best/sys"});
    size_t crossover = 0;
    for (size_t n : kSweep) {
        auto best = tech::raceDesignPoint(lib, n, RaceCase::Best);
        auto worst = tech::raceDesignPoint(lib, n, RaceCase::Worst);
        auto sys = tech::systolicDesignPoint(lib, n);
        double ratio = best.throughputPerSecPerCm2() /
                       sys.throughputPerSecPerCm2();
        table.row(n, best.throughputPerSecPerCm2(),
                  worst.throughputPerSecPerCm2(),
                  sys.throughputPerSecPerCm2(), ratio);
        if (crossover == 0 && ratio < 1.0)
            crossover = n;
    }
    table.print(std::cout);
    std::cout << "Race-best advantage holds for N < ~" << crossover
              << " (paper: N < 70)\n";
}

void
powerDensityPanel(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 9b: power density (W/cm^2) vs N, " +
                          lib.name + "  [ITRS ceiling 200]");
    util::TextTable table({"N", "race best", "race worst",
                           "race gated", "race clockless", "systolic"});
    for (size_t n : kSweep) {
        auto best = tech::raceDesignPoint(lib, n, RaceCase::Best);
        auto worst = tech::raceDesignPoint(lib, n, RaceCase::Worst);
        auto gated = tech::raceDesignPoint(lib, n, RaceCase::Worst,
                                           ClockMode::Gated);
        auto clockless = tech::raceDesignPoint(
            lib, n, RaceCase::Worst, ClockMode::Clockless);
        auto sys = tech::systolicDesignPoint(lib, n);
        table.row(n, best.powerDensityWPerCm2(),
                  worst.powerDensityWPerCm2(),
                  gated.powerDensityWPerCm2(),
                  clockless.powerDensityWPerCm2(),
                  sys.powerDensityWPerCm2());
    }
    table.print(std::cout);
}

void
energyDelayScatter(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 9c: energy-delay scatter at N = 30, " +
                          lib.name);
    const size_t n = 30;
    std::vector<DesignPoint> points{
        tech::raceDesignPoint(lib, n, RaceCase::Best),
        tech::raceDesignPoint(lib, n, RaceCase::Worst),
        tech::raceDesignPoint(lib, n, RaceCase::Best,
                              ClockMode::Gated),
        tech::raceDesignPoint(lib, n, RaceCase::Worst,
                              ClockMode::Gated),
        tech::raceDesignPoint(lib, n, RaceCase::Worst,
                              ClockMode::Clockless),
        tech::systolicDesignPoint(lib, n),
    };
    util::TextTable table({"design point", "energy mJ", "latency ns",
                           "EDP fJ*s"});
    for (const auto &p : points)
        table.row(p.label, p.energyJ * 1e3, p.latencyNs,
                  p.energyDelayProduct() * 1e18);
    table.print(std::cout);
    std::cout << "(iso-EDP curves in the paper: 0.5, 1, 5, 10 fJ*s)\n";
}

} // namespace

int
main()
{
    const CellLibrary &amis = CellLibrary::amis();
    throughputPanel(amis);
    powerDensityPanel(amis);
    energyDelayScatter(amis);
    return 0;
}
