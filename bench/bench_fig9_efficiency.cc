/**
 * @file
 * Reproduces Figure 9 (AMIS library): (a) throughput per cm^2 vs N,
 * (b) power density vs N against the ITRS 200 W/cm^2 ceiling, and
 * (c) the energy-delay scatter at N = 30 -- plus a measured-activity
 * panel that backs the analytic curves with switching activity
 * simulated on the compiled gate-level kernel
 * (rl/circuit/compiled_sim.h), which is fast enough to sweep the
 * synthesized fabric to N >= 128 (the interpretive SyncSim capped
 * this panel at toy sizes).
 */

#include <iostream>

#include "rl/bio/sequence.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/tech/energy_model.h"
#include "rl/tech/metrics.h"
#include "rl/util/random.h"
#include "rl/util/table.h"

using namespace racelogic;
using tech::CellLibrary;
using tech::ClockMode;
using tech::DesignPoint;
using tech::RaceCase;

namespace {

const std::vector<size_t> kSweep{4, 8, 12, 16, 20, 30, 40, 50, 60,
                                 70, 80, 90, 100};

void
throughputPanel(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 9a: throughput (patterns/sec/cm^2) vs N, " +
                          lib.name);
    util::TextTable table({"N", "race best", "race worst", "systolic",
                           "best/sys"});
    size_t crossover = 0;
    for (size_t n : kSweep) {
        auto best = tech::raceDesignPoint(lib, n, RaceCase::Best);
        auto worst = tech::raceDesignPoint(lib, n, RaceCase::Worst);
        auto sys = tech::systolicDesignPoint(lib, n);
        double ratio = best.throughputPerSecPerCm2() /
                       sys.throughputPerSecPerCm2();
        table.row(n, best.throughputPerSecPerCm2(),
                  worst.throughputPerSecPerCm2(),
                  sys.throughputPerSecPerCm2(), ratio);
        if (crossover == 0 && ratio < 1.0)
            crossover = n;
    }
    table.print(std::cout);
    std::cout << "Race-best advantage holds for N < ~" << crossover
              << " (paper: N < 70)\n";
}

void
powerDensityPanel(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 9b: power density (W/cm^2) vs N, " +
                          lib.name + "  [ITRS ceiling 200]");
    util::TextTable table({"N", "race best", "race worst",
                           "race gated", "race clockless", "systolic"});
    for (size_t n : kSweep) {
        auto best = tech::raceDesignPoint(lib, n, RaceCase::Best);
        auto worst = tech::raceDesignPoint(lib, n, RaceCase::Worst);
        auto gated = tech::raceDesignPoint(lib, n, RaceCase::Worst,
                                           ClockMode::Gated);
        auto clockless = tech::raceDesignPoint(
            lib, n, RaceCase::Worst, ClockMode::Clockless);
        auto sys = tech::systolicDesignPoint(lib, n);
        table.row(n, best.powerDensityWPerCm2(),
                  worst.powerDensityWPerCm2(),
                  gated.powerDensityWPerCm2(),
                  clockless.powerDensityWPerCm2(),
                  sys.powerDensityWPerCm2());
    }
    table.print(std::cout);
}

void
energyDelayScatter(const CellLibrary &lib)
{
    util::printBanner(std::cout,
                      "Fig. 9c: energy-delay scatter at N = 30, " +
                          lib.name);
    const size_t n = 30;
    std::vector<DesignPoint> points{
        tech::raceDesignPoint(lib, n, RaceCase::Best),
        tech::raceDesignPoint(lib, n, RaceCase::Worst),
        tech::raceDesignPoint(lib, n, RaceCase::Best,
                              ClockMode::Gated),
        tech::raceDesignPoint(lib, n, RaceCase::Worst,
                              ClockMode::Gated),
        tech::raceDesignPoint(lib, n, RaceCase::Worst,
                              ClockMode::Clockless),
        tech::systolicDesignPoint(lib, n),
    };
    util::TextTable table({"design point", "energy mJ", "latency ns",
                           "EDP fJ*s"});
    for (const auto &p : points)
        table.row(p.label, p.energyJ * 1e3, p.latencyNs,
                  p.energyDelayProduct() * 1e18);
    table.print(std::cout);
    std::cout << "(iso-EDP curves in the paper: 0.5, 1, 5, 10 fJ*s)\n";
}

void
measuredActivityPanel(const CellLibrary &lib)
{
    // Eq. 3 priced from simulated per-net switching activity (the
    // ModelSim -> PrimeTime substitute) on the compiled kernel, best
    // (identical strings) and worst (complete mismatch) cases, with
    // the analytic worst-case model alongside for cross-checking.
    util::printBanner(
        std::cout,
        "Fig. 9 backing data: measured gate-level energy/comparison "
        "(compiled kernel), " +
            lib.name);
    util::TextTable table({"N", "gates", "best J", "worst J",
                           "analytic worst J", "meas/analytic"});
    util::Rng rng(9);
    for (size_t n : {16ul, 32ul, 64ul, 128ul}) {
        core::RaceGridCircuit fabric(bio::Alphabet::dna(), n, n);
        bio::Sequence same =
            bio::Sequence::random(rng, bio::Alphabet::dna(), n);
        auto [w1, w2] = bio::worstCasePair(rng, bio::Alphabet::dna(), n);

        fabric.sim().clearActivity();
        fabric.align(same, same);
        double bestJ =
            tech::energyFromActivityJ(lib, fabric.sim().activity());

        fabric.sim().clearActivity();
        fabric.align(w1, w2);
        double worstJ =
            tech::energyFromActivityJ(lib, fabric.sim().activity());

        double analyticJ =
            tech::raceAnalyticEnergy(lib, n, RaceCase::Worst).totalJ();
        table.row(n, fabric.netlist().gateCount(), bestJ, worstJ,
                  analyticJ, worstJ / analyticJ);
    }
    table.print(std::cout);
    std::cout << "(measured includes comparator/OR data toggles the "
                 "fitted model folds into its data term)\n";
}

} // namespace

int
main()
{
    const CellLibrary &amis = CellLibrary::amis();
    throughputPanel(amis);
    powerDensityPanel(amis);
    energyDelayScatter(amis);
    measuredActivityPanel(amis);
    return 0;
}
