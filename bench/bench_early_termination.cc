/**
 * @file
 * Section 6 threshold screening through the unified api::RaceEngine:
 * on database workloads where genuine relatives are rare, the
 * OR-race's "score known at every instant" property lets the engine
 * abort hopeless comparisons at the threshold cycle.  Sweeps the
 * related fraction and the threshold, and compares fabric-busy time
 * against the systolic baseline, which must always run to completion.
 */

#include <iostream>

#include "rl/api/api.h"
#include "rl/bio/sequence.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/tech/cell_library.h"
#include "rl/util/random.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;

int
main()
{
    const size_t n = 32;
    const size_t database_size = 400;
    const tech::CellLibrary &lib = tech::CellLibrary::amis();
    ScoreMatrix m = ScoreMatrix::dnaShortestPathInfMismatch();
    uint64_t sys_cycles_per_comparison =
        systolic::LiptonLoprestiArray::latencyCycles(n, n);

    // Measurement mode: earlyTerminate off so rejected races also
    // report their counterfactual full-race latency -- that's the
    // "race full cycles" / speedup contrast below.  A production
    // screen keeps the default (the simulation itself stops at the
    // threshold cycle, exactly like the hardware abort counter).
    api::EngineConfig measure;
    measure.earlyTerminate = false;
    api::RaceEngine engine(measure);

    util::printBanner(
        std::cout,
        "Screening throughput vs related fraction (N = 32, threshold "
        "= 44, database = 400)");
    util::Rng rng(66);
    util::TextTable sweep({"related frac", "accepted", "race cycles",
                           "race full cycles", "speedup",
                           "systolic cycles", "race ns", "systolic ns"});
    for (double frac : {0.0, 0.05, 0.2, 0.5, 0.9}) {
        auto wl = bio::makeScreeningWorkload(
            rng, Alphabet::dna(), n, database_size, frac,
            bio::MutationModel{0.04, 0.02, 0.02});
        auto batch = engine.screen(m, 44, wl.query, wl.database);
        uint64_t sys_total = sys_cycles_per_comparison * database_size;
        sweep.row(frac, batch.acceptedCount(), batch.busyCycles(),
                  batch.fullRaceCycles(), batch.speedup(), sys_total,
                  double(batch.busyCycles()) * lib.racePeriodNs,
                  double(sys_total) * lib.systolicPeriodNs);
    }
    sweep.print(std::cout);
    std::cout << "(the systolic array cannot abort: 'the entire "
                 "computation has to complete, before which the "
                 "maximum score can be ascertained')\n";

    util::printBanner(std::cout,
                      "Threshold sweep at related fraction 0.1 "
                      "(tighter thresholds reject sooner)");
    util::TextTable tsweep({"threshold", "accepted", "race cycles",
                            "speedup vs full race"});
    auto wl = bio::makeScreeningWorkload(
        rng, Alphabet::dna(), n, database_size, 0.1,
        bio::MutationModel{0.04, 0.02, 0.02});
    for (bio::Score threshold : {34, 38, 44, 52, 64}) {
        auto batch = engine.screen(m, threshold, wl.query, wl.database);
        tsweep.row(threshold, batch.acceptedCount(), batch.busyCycles(),
                   batch.speedup());
    }
    tsweep.print(std::cout);
    std::cout << "(with increasing dynamic range 'the best case\n"
                 " scenario becomes more representative of a typical\n"
                 " situation' -- aborted races cost only the\n"
                 " threshold, not the worst case 2N)\n"
              << "plan cache: " << engine.stats().plansBuilt
              << " plans built for " << engine.stats().solves
              << " races (one fabric shape serves the whole sweep)\n";

    util::printBanner(std::cout,
                      "Fabric pool scaling (batch dispatch, threshold "
                      "44, related fraction 0.1)");
    util::TextTable pool({"fabrics", "makespan cycles", "utilization",
                          "comparisons/s @333MHz"});
    for (size_t fabrics : {1u, 2u, 4u, 8u, 16u}) {
        api::EngineConfig config;
        config.fabricCount = fabrics;
        api::RaceEngine pooled(config);
        auto batch = pooled.screen(m, 44, wl.query, wl.database);
        const auto &report = *batch.schedule;
        pool.row(fabrics, report.makespanCycles,
                 util::format("%.2f", report.utilization),
                 report.comparisonsPerSecond(lib));
    }
    pool.print(std::cout);
    std::cout << "(near-linear scaling: comparisons are independent, "
                 "so a pool of small fabrics beats one big systolic "
                 "array for screening)\n";
    return 0;
}
