/**
 * @file
 * Ablation: systolic pipelining.  The Lipton-Lopresti array can
 * stream back-to-back comparisons (a new pair every 2N + 2 cycles),
 * which the paper's single-comparison framing does not credit.  This
 * bench recomputes the Fig. 9a throughput-per-area comparison under
 * both assumptions, showing where the paper's crossover moves if the
 * baseline is pipelined -- and that Race Logic's best-case +
 * early-termination regime keeps its advantage at small N either
 * way.
 */

#include <iostream>

#include "rl/systolic/lipton_lopresti.h"
#include "rl/tech/metrics.h"
#include "rl/util/table.h"

using namespace racelogic;
using systolic::LiptonLoprestiArray;
using tech::CellLibrary;
using tech::RaceCase;

int
main()
{
    const CellLibrary &lib = CellLibrary::amis();
    util::printBanner(std::cout,
                      "Fig. 9a revisited: systolic un-pipelined vs "
                      "pipelined (AMIS)");
    util::TextTable table({"N", "race best thr/cm2",
                           "sys latency-based", "sys pipelined",
                           "best/sys (paper)", "best/sys (pipelined)"});
    size_t crossover_paper = 0, crossover_pipelined = 0;
    for (size_t n : {4u, 8u, 12u, 16u, 20u, 30u, 40u, 50u, 60u, 70u,
                     80u, 100u}) {
        auto race = tech::raceDesignPoint(lib, n, RaceCase::Best);
        auto sys = tech::systolicDesignPoint(lib, n);
        // Pipelined: one result per initiation interval after fill.
        double ii_ns =
            double(LiptonLoprestiArray::initiationInterval(n, n)) *
            lib.systolicPeriodNs;
        double sys_pipelined_thr =
            (1e9 / ii_ns) / (sys.areaUm2 * 1e-8);
        double r_paper = race.throughputPerSecPerCm2() /
                         sys.throughputPerSecPerCm2();
        double r_pipe =
            race.throughputPerSecPerCm2() / sys_pipelined_thr;
        table.row(n, race.throughputPerSecPerCm2(),
                  sys.throughputPerSecPerCm2(), sys_pipelined_thr,
                  r_paper, r_pipe);
        if (!crossover_paper && r_paper < 1.0)
            crossover_paper = n;
        if (!crossover_pipelined && r_pipe < 1.0)
            crossover_pipelined = n;
    }
    table.print(std::cout);
    std::cout << "crossover, latency-based baseline: N ~ "
              << crossover_paper
              << " (paper: 70); pipelined baseline: N ~ "
              << crossover_pipelined << '\n'
              << "(pipelining lifts the linear array's throughput by "
                 "~latency/II = ~1.5x, pulling the crossover in; the\n"
                 " paper's comparison is per-comparison latency-"
                 "based, which bench_fig9_efficiency reproduces.)\n";
    return 0;
}
