/**
 * @file
 * The abstract's headline claims, measured: latency, throughput per
 * area, power density, and energy advantage of Race Logic over the
 * Lipton-Lopresti systolic array at N = 20 (AMIS).  This bench
 * prints the paper-vs-measured table recorded in EXPERIMENTS.md.
 */

#include <iostream>

#include "rl/bio/sequence.h"
#include "rl/core/race_grid.h"
#include "rl/systolic/lipton_lopresti.h"
#include "rl/tech/metrics.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;
using tech::CellLibrary;
using tech::ClockMode;
using tech::RaceCase;

int
main()
{
    const CellLibrary &lib = CellLibrary::amis();
    const size_t n = 20;

    util::printBanner(std::cout,
                      "Headline claims at N = 20, AMIS 0.5um "
                      "(paper abstract & intro)");

    // Cycle-accurate cross-check of the latency model.
    util::Rng rng(1);
    core::RaceGridAligner racer(
        ScoreMatrix::dnaShortestPathInfMismatch());
    systolic::LiptonLoprestiArray sys_array(
        ScoreMatrix::dnaShortestPathInfMismatch());
    auto [wa, wb] = bio::worstCasePair(rng, Alphabet::dna(), n);
    Sequence same = Sequence::random(rng, Alphabet::dna(), n);
    uint64_t race_worst_cycles = racer.align(wa, wb).latencyCycles;
    uint64_t race_best_cycles = racer.align(same, same).latencyCycles;
    auto sys_run = sys_array.align(wa, wb);

    auto race_best = tech::raceDesignPoint(lib, n, RaceCase::Best);
    auto race_worst = tech::raceDesignPoint(lib, n, RaceCase::Worst);
    auto race_gated_best = tech::raceDesignPoint(
        lib, n, RaceCase::Best, ClockMode::Gated);
    auto race_clockless_best = tech::raceDesignPoint(
        lib, n, RaceCase::Best, ClockMode::Clockless);
    auto sys = tech::systolicDesignPoint(lib, n, sys_run);

    util::TextTable cycles({"quantity", "cycles", "period ns",
                            "latency ns"});
    cycles.row("race best (measured)", race_best_cycles,
               lib.racePeriodNs,
               double(race_best_cycles) * lib.racePeriodNs);
    cycles.row("race worst (measured)", race_worst_cycles,
               lib.racePeriodNs,
               double(race_worst_cycles) * lib.racePeriodNs);
    cycles.row("systolic (measured)", sys_run.cycles,
               lib.systolicPeriodNs,
               double(sys_run.cycles) * lib.systolicPeriodNs);
    cycles.print(std::cout);

    double latency_ratio = sys.latencyNs / race_worst.latencyNs;
    double thr_ratio = race_best.throughputPerSecPerCm2() /
                       sys.throughputPerSecPerCm2();
    double pd_ratio =
        sys.powerDensityWPerCm2() / race_worst.powerDensityWPerCm2();
    double energy_ratio_worst = sys.energyJ / race_worst.energyJ;
    double energy_ratio_best_clockless =
        sys.energyJ / race_clockless_best.energyJ;
    double energy_ratio_best_gated =
        sys.energyJ / race_gated_best.energyJ;

    util::TextTable claims({"claim", "paper", "measured", "holds"});
    claims.row("latency advantage (worst case)", "up to 4x",
               util::format("%.2fx", latency_ratio),
               latency_ratio > 3.3 && latency_ratio < 4.8 ? "yes"
                                                          : "NO");
    claims.row("throughput/area advantage", "~3x",
               util::format("%.2fx", thr_ratio),
               thr_ratio > 2.2 && thr_ratio < 4.5 ? "yes" : "NO");
    claims.row("power density advantage", "~5x",
               util::format("%.2fx", pd_ratio),
               pd_ratio > 3.5 && pd_ratio < 7.0 ? "yes" : "NO");
    claims.row("energy advantage (worst, ungated)", "(see note)",
               util::format("%.1fx", energy_ratio_worst),
               energy_ratio_worst > 4.0 ? "yes" : "NO");
    claims.row("energy advantage (best, gated)", "toward 200x",
               util::format("%.1fx", energy_ratio_best_gated),
               energy_ratio_best_gated > 15.0 ? "yes" : "NO");
    claims.row("energy advantage (best, clockless)", "toward 200x",
               util::format("%.1fx", energy_ratio_best_clockless),
               energy_ratio_best_clockless > 20.0 ? "yes" : "NO");
    claims.print(std::cout);

    std::cout
        << "\nNote: the intro's single '200x' energy figure is not\n"
           "derivable from the paper's own Eq. 5 + Fig. 9b numbers\n"
           "(see EXPERIMENTS.md); our calibration anchors Eq. 5 and\n"
           "the abstract's 4x/3x/5x, and reproduces a 1-2 order-of-\n"
           "magnitude energy advantage for the gated/clockless best\n"
           "case, with the same who-wins structure everywhere.\n";
    return 0;
}
