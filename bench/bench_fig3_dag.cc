/**
 * @file
 * Reproduces Figure 3: the example weighted DAG mapped to OR-type
 * (shortest path) and AND-type (longest path) Race Logic, solved
 * through the unified api::RaceEngine on both the behavioral and
 * gate-level backends (the latter compiles the DAG to an OR/AND +
 * DFF netlist and cross-checks the sink arrival on real gates).
 */

#include <iostream>

#include "rl/api/api.h"
#include "rl/graph/paths.h"
#include "rl/util/table.h"

using namespace racelogic;
using graph::Dag;
using graph::NodeId;

namespace {

void
runObjective(const Dag &dag, const std::vector<NodeId> &sources,
             graph::Objective objective, const char *title)
{
    util::printBanner(std::cout, title);
    NodeId sink = dag.sinks().front();

    api::RaceEngine engine;
    api::RaceProblem problem =
        api::RaceProblem::dagPath(dag, sources, sink, objective);
    api::RaceResult raced = engine.solve(problem);

    auto dp = graph::solveDag(dag, sources, objective);
    util::TextTable table({"node", "label", "fires at cycle",
                           "DP distance"});
    for (NodeId n = 0; n < dag.nodeCount(); ++n) {
        table.row(n, dag.label(n),
                  raced.nodeArrival[n].fired()
                      ? std::to_string(raced.nodeArrival[n].time())
                      : std::string("never"),
                  dp.reached(n) ? std::to_string(dp.distance[n])
                                : std::string("unreachable"));
    }
    table.print(std::cout);

    // Gate-level replay: the engine compiles the netlist, races it,
    // asserts agreement, and reports the inventory on the estimate.
    api::EngineConfig hardware;
    hardware.backend = api::BackendKind::GateLevel;
    api::RaceEngine gateEngine(hardware);
    api::RaceResult hard = gateEngine.solve(problem);

    util::TextTable hw({"gate-level sink arrival", "gates", "DFFs"});
    hw.row(hard.completed ? std::to_string(hard.score)
                          : std::string("never"),
           hard.estimate ? hard.estimate->gateCount : 0,
           hard.estimate ? hard.estimate->dffCount : 0);
    hw.print(std::cout);
}

} // namespace

int
main()
{
    Dag dag = graph::makeFig3ExampleDag();
    std::cout << "Fig. 3a example DAG: " << dag.nodeCount()
              << " nodes, " << dag.edgeCount()
              << " weighted edges (weights";
    for (const auto &e : dag.edges())
        std::cout << ' ' << e.weight;
    std::cout << ")\n";

    runObjective(dag, {0, 1}, graph::Objective::Shortest,
                 "Fig. 3c: OR-type race (shortest path; paper: sink "
                 "fires at cycle 2)");
    runObjective(dag, {0, 1}, graph::Objective::Longest,
                 "Fig. 3b: AND-type race (longest path)");
    return 0;
}
