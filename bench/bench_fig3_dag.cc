/**
 * @file
 * Reproduces Figure 3: the example weighted DAG mapped to OR-type
 * (shortest path) and AND-type (longest path) synchronous Race Logic,
 * run both event-driven and as compiled gate-level circuits.
 */

#include <iostream>

#include "rl/circuit/sim_sync.h"
#include "rl/core/race_network.h"
#include "rl/graph/paths.h"
#include "rl/util/table.h"

using namespace racelogic;
using core::RaceType;
using graph::Dag;
using graph::NodeId;

namespace {

void
runType(const Dag &dag, const std::vector<NodeId> &sources,
        RaceType type, const char *title)
{
    util::printBanner(std::cout, title);
    core::RaceOutcome outcome = core::raceDag(dag, sources, type);
    auto dp = graph::solveDag(dag, sources,
                              type == RaceType::Or
                                  ? graph::Objective::Shortest
                                  : graph::Objective::Longest);
    util::TextTable table({"node", "label", "fires at cycle",
                           "DP distance"});
    for (NodeId n = 0; n < dag.nodeCount(); ++n) {
        table.row(n, dag.label(n),
                  outcome.at(n).fired()
                      ? std::to_string(outcome.at(n).time())
                      : std::string("never"),
                  dp.reached(n) ? std::to_string(dp.distance[n])
                                : std::string("unreachable"));
    }
    table.print(std::cout);

    core::RaceCircuit rc = core::compileRaceCircuit(dag, sources, type);
    circuit::SyncSim sim(rc.netlist);
    for (circuit::NetId in : rc.sourceInputs)
        sim.setInput(in, true);
    NodeId sink = dag.sinks().front();
    auto arrival = sim.runUntil(rc.nodeNets[sink], true, 64);
    auto counts = rc.netlist.typeCounts();
    util::TextTable hw({"gate-level sink arrival", "gates", "DFFs"});
    hw.row(arrival ? std::to_string(*arrival) : std::string("never"),
           rc.netlist.gateCount(),
           counts[size_t(circuit::GateType::Dff)]);
    hw.print(std::cout);
}

} // namespace

int
main()
{
    Dag dag = graph::makeFig3ExampleDag();
    std::cout << "Fig. 3a example DAG: " << dag.nodeCount()
              << " nodes, " << dag.edgeCount()
              << " weighted edges (weights";
    for (const auto &e : dag.edges())
        std::cout << ' ' << e.weight;
    std::cout << ")\n";

    runType(dag, {0, 1}, RaceType::Or,
            "Fig. 3c: OR-type race (shortest path; paper: sink fires "
            "at cycle 2)");
    runType(dag, {0, 1}, RaceType::And,
            "Fig. 3b: AND-type race (longest path)");
    return 0;
}
