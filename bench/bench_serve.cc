/**
 * @file
 * Saturation benchmark for the racelogic::serve daemon: a real
 * AlignServer on a Unix socket, a real pipelined client, end-to-end
 * through decode, admission, shard dispatch, the race, and the
 * response path.  On the 1-CPU dev host the absolute req/s is mostly
 * a context-switch measurement; the regression-gated story is that
 * the serve overhead stays bounded relative to the raw solve
 * (BM_ApiEngineSolveCached) and the counters stay clean -- the
 * shard-hit rate is exported as a benchmark counter and must pin to
 * ~1.0 once the plan is warm.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include <unistd.h>

#include "rl/serve/client.h"
#include "rl/serve/server.h"
#include "rl/telemetry/registry.h"
#include "rl/util/random.h"

using namespace racelogic;

namespace {

std::string
randomDna(uint64_t seed, size_t n)
{
    util::Rng rng(seed);
    static const char letters[] = "ACGT";
    std::string s;
    s.reserve(n);
    for (size_t i = 0; i < n; ++i)
        s.push_back(letters[rng.index(4)]);
    return s;
}

std::string
benchSocketPath()
{
    return "/tmp/rl-bench-serve-" + std::to_string(getpid()) + ".sock";
}

/**
 * End-to-end serve throughput at a saturating pipeline depth: every
 * iteration keeps `window` same-shape pairwise requests outstanding,
 * so the daemon runs decode/admit/solve/reply back to back with a
 * never-empty queue and a warm shard-local plan.
 */
void
serveSaturation(benchmark::State &state, bool telemetry)
{
    const size_t n = size_t(state.range(0));
    const size_t window = 16;

    serve::ServerConfig cfg;
    cfg.unixPath = benchSocketPath();
    cfg.workers = 2;
    cfg.queueDepth = 2 * window;
    cfg.engine.withEstimates = false;
    cfg.telemetry = telemetry;
    serve::AlignServer server(std::move(cfg));
    if (!server.start()) {
        state.SkipWithError("failed to bind bench socket");
        return;
    }
    serve::ServeClient client =
        serve::ServeClient::overUnix(benchSocketPath());

    const bio::ScoreMatrix costs = bio::ScoreMatrix::dnaShortestPath();
    const std::string a = randomDna(1, n), b = randomDna(2, n);

    // Warm the shard's plan cache so the timed loop measures the
    // steady state, not the one-off synthesis.
    uint32_t id = 1;
    client.submitPairwise(id++, costs, a, b);
    serve::Response response;
    client.receive(response);

    int64_t served = 0;
    for (auto _ : state) {
        for (size_t w = 0; w < window; ++w)
            client.submitPairwise(id++, costs, a, b);
        for (size_t w = 0; w < window; ++w) {
            if (!client.receive(response)) {
                state.SkipWithError("daemon disconnected");
                return;
            }
            served += response.status == serve::Status::Ok;
        }
    }
    state.SetItemsProcessed(served);

    // The queueing-metrics story (docs/performance.md): a warm
    // same-shape workload must be all shard hits, no build locks.
    uint64_t hits = 0, locks = 0, solves = 0;
    for (const serve::ShardStatsWire &s : server.shardStats()) {
        hits += s.shardHits;
        locks += s.buildLocks;
        solves += s.solves;
    }
    state.counters["shard_hit_rate"] =
        solves ? double(hits) / double(solves) : 0.0;
    state.counters["build_locks"] = double(locks);
    state.counters["queue_high_water"] =
        double(server.queueStats().highWater);

    server.stop();
}

void
BM_ServeSaturation(benchmark::State &state)
{
    serveSaturation(state, true);
}
BENCHMARK(BM_ServeSaturation)->Arg(64)->UseRealTime();

/**
 * The same saturation loop with telemetry disabled (no metric
 * registration, no trace recording): the regression-gated pair.
 * CI's bench_compare --pair check holds BM_ServeSaturation within 5%
 * of this -- the observability tax must stay in the noise.
 */
void
BM_ServeSaturationNoTelemetry(benchmark::State &state)
{
    serveSaturation(state, false);
}
BENCHMARK(BM_ServeSaturationNoTelemetry)->Arg(64)->UseRealTime();

/**
 * Overload with a class mix: a 2x-saturating pipeline of batch,
 * normal, and interactive pairwise requests against a queue too small
 * to hold them all, so admission must shed.  The headline story is
 * the per-class split: interactive keeps serving (its shed count pins
 * to ~0) while batch absorbs the evictions -- the counters export
 * exactly that (per-class served p99 in microseconds plus per-class
 * sheds, QueueFull + evictions, from the daemon's ledger).
 */
void
BM_ServeMixedPriority(benchmark::State &state)
{
    const size_t n = size_t(state.range(0));
    const size_t window = 32; // 2x the queue: admission must choose

    serve::ServerConfig cfg;
    cfg.unixPath = benchSocketPath();
    cfg.workers = 2;
    cfg.queueDepth = window / 2;
    // Keep the dispatcher from inhaling the whole queue (eviction can
    // only claim *queued* victims) but let each drain cover one full
    // weight round (1+2+4) so batch keeps its starvation-free slot --
    // the production shape, where depth >> drain batch >= the round.
    cfg.drainBatchMax = 7;
    cfg.engine.withEstimates = false;
    serve::AlignServer server(std::move(cfg));
    if (!server.start()) {
        state.SkipWithError("failed to bind bench socket");
        return;
    }
    serve::ServeClient client =
        serve::ServeClient::overUnix(benchSocketPath());

    const bio::ScoreMatrix costs = bio::ScoreMatrix::dnaShortestPath();
    const std::string a = randomDna(1, n), b = randomDna(2, n);

    uint32_t id = 1;
    serve::Response response;
    client.submitPairwise(id++, costs, a, b); // warm the plan
    client.receive(response);

    // Submit stamps per id so pipelined receives still yield honest
    // per-request latencies; class is id % 3, recomputed on receive.
    // Each iteration fires one 2x-depth burst and drains it fully:
    // resubmitting on rejection would couple the offered rate to the
    // (fast) rejection rate and turn 2x overload into a spiral.
    std::vector<std::chrono::steady_clock::time_point> stamp(1 << 16);
    std::vector<std::vector<double>> latencyUs(serve::kPriorityClasses);
    int64_t served = 0;
    for (auto _ : state) {
        for (size_t w = 0; w < window; ++w) {
            stamp[id % stamp.size()] = std::chrono::steady_clock::now();
            client.submitPairwise(
                id, costs, a, b, 0,
                static_cast<serve::Priority>(id % 3));
            ++id;
        }
        for (size_t w = 0; w < window; ++w) {
            if (!client.receive(response)) {
                state.SkipWithError("daemon disconnected");
                return;
            }
            if (response.status == serve::Status::Ok) {
                const double us =
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        std::chrono::steady_clock::now() -
                        stamp[response.id % stamp.size()])
                        .count();
                latencyUs[response.id % 3].push_back(us);
                ++served;
            }
        }
    }
    state.SetItemsProcessed(served);

    static const char *const kClassName[serve::kPriorityClasses] = {
        "batch", "normal", "interactive"};
    for (size_t c = 0; c < serve::kPriorityClasses; ++c) {
        std::vector<double> &lat = latencyUs[c];
        double p99 = 0.0;
        if (!lat.empty()) {
            std::sort(lat.begin(), lat.end());
            p99 = lat[(lat.size() * 99) / 100 -
                      ((lat.size() * 99) % 100 == 0 && lat.size() > 1
                           ? 1
                           : 0)];
        }
        state.counters[std::string(kClassName[c]) + "_p99_us"] = p99;
    }
    const serve::QueueStats q = server.queueStats();
    for (size_t c = 0; c < serve::kPriorityClasses; ++c)
        state.counters[std::string(kClassName[c]) + "_shed"] =
            double(q.classes[c].rejectedQueueFull +
                   q.classes[c].shedEvicted);

    server.stop();
}
BENCHMARK(BM_ServeMixedPriority)->Arg(64)->UseRealTime();

/**
 * Protocol floor: a Ping round trip is pure wire + socket overhead
 * (no queue, no engine), the lower bound any serve request pays.
 */
void
BM_ServePingRoundTrip(benchmark::State &state)
{
    serve::ServerConfig cfg;
    cfg.unixPath = benchSocketPath();
    cfg.workers = 1;
    serve::AlignServer server(std::move(cfg));
    if (!server.start()) {
        state.SkipWithError("failed to bind bench socket");
        return;
    }
    serve::ServeClient client =
        serve::ServeClient::overUnix(benchSocketPath());

    uint32_t id = 1;
    serve::Response response;
    for (auto _ : state) {
        client.submitPing(id++);
        if (!client.receive(response)) {
            state.SkipWithError("daemon disconnected");
            return;
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
    server.stop();
}
BENCHMARK(BM_ServePingRoundTrip)->UseRealTime();

/**
 * Admission-control micro: tryPush/drain/markDone cycles on the bare
 * bounded queue, no sockets -- what the daemon's ledger itself costs.
 */
void
BM_ServeQueueCycle(benchmark::State &state)
{
    serve::RequestQueue queue(64);
    for (auto _ : state) {
        for (int i = 0; i < 32; ++i)
            benchmark::DoNotOptimize(
                queue.tryPush(serve::QueuedJob{0, [] {}}));
        auto batch = queue.drain(32);
        queue.markDone(batch.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 32);
}
BENCHMARK(BM_ServeQueueCycle);

/**
 * The raw recording hot path: what one traced request pays in metric
 * arithmetic alone -- a counter add plus the nine histogram records
 * (eight stages + end-to-end) the serve loop performs, on a
 * contended-lane-free registry.  Nanoseconds per iteration here is
 * the theoretical floor of the telemetry tax measured end-to-end by
 * the BM_ServeSaturation pair.
 */
void
BM_MetricsOverhead(benchmark::State &state)
{
    telemetry::Registry registry;
    telemetry::Counter *requests =
        registry.addCounter("bench_requests_total").valueOrFatal();
    telemetry::Histogram *stages[9];
    for (int i = 0; i < 9; ++i)
        stages[i] =
            registry.addHistogram("bench_stage_" + std::to_string(i))
                .valueOrFatal();

    uint64_t fake = 1;
    for (auto _ : state) {
        requests->add(1, 1);
        for (int i = 0; i < 9; ++i)
            stages[i]->record(fake + uint64_t(i), 1);
        fake = fake * 2862933555777941757ull + 3037000493ull;
        fake &= 0xFFFF; // keep values in realistic microsecond range
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_MetricsOverhead);

} // namespace
