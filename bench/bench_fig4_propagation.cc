/**
 * @file
 * Reproduces Figure 4: the OR-type synchronous Race Logic grid for
 * N = M = 7, the cycle-by-cycle propagation table for the paper's
 * example strings (Fig. 4c), and the gate-level fabric's statistics.
 */

#include <iostream>

#include "rl/bio/align_dp.h"
#include "rl/core/race_grid.h"
#include "rl/core/race_grid_circuit.h"
#include "rl/tech/area_model.h"
#include "rl/tech/cell_library.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

int
main()
{
    Sequence p(Alphabet::dna(), "ACTGAGA");
    Sequence q(Alphabet::dna(), "GATTCGA");

    util::printBanner(std::cout,
                      "Fig. 4c: propagation table (cycle at which "
                      "each node's OR output fires)");
    core::RaceGridAligner racer(
        ScoreMatrix::dnaShortestPathInfMismatch());
    core::RaceGridResult result = racer.align(q, p);
    std::cout << "     A C T G A G A   (P along columns)\n"
              << result.arrivalTable()
              << "score (sink arrival) = " << result.score
              << " cycles\n";

    util::printBanner(std::cout,
                      "Fig. 4a: gate-level fabric, N = M = 7");
    core::RaceGridCircuit fabric(Alphabet::dna(), 7, 7);
    auto run = fabric.align(q, p);
    auto counts = fabric.netlist().typeCounts();
    util::TextTable hw({"metric", "value"});
    hw.row("gate-level score", run.score);
    hw.row("total gates", fabric.netlist().gateCount());
    hw.row("DFF delay elements",
           counts[size_t(circuit::GateType::Dff)]);
    hw.row("OR cells", counts[size_t(circuit::GateType::Or)]);
    hw.row("XNOR comparators (Eq. 2)",
           counts[size_t(circuit::GateType::Xnor)]);
    hw.row("AMIS area um2",
           tech::raceGridArea(tech::CellLibrary::amis(), 7, 7, 2)
               .totalUm2);
    hw.print(std::cout);

    util::printBanner(std::cout,
                      "Unit cell inventory (Fig. 4b: OR + 3 DFF + "
                      "AND + XNOR comparator)");
    auto cell = core::RaceGridCircuit::unitCellInventory(2);
    util::TextTable cell_table({"gate", "count"});
    for (size_t t = 0; t < circuit::kGateTypeCount; ++t)
        if (cell[t])
            cell_table.row(
                circuit::gateTypeName(circuit::GateType(t)), cell[t]);
    cell_table.print(std::cout);
    return 0;
}
