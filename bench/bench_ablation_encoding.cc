/**
 * @file
 * Ablation for the Section 5 delay-encoding trade-off: one-hot DFF
 * chains vs binary saturating counters, swept over the dynamic range
 * N_DR.  "When using one hot encoded DFFs ... the area of a single
 * Race Logic cell scales linearly with dynamic range ... Binary
 * encoding with a saturating up-counter allows us to save on area."
 */

#include <iostream>

#include "rl/bio/score_matrix.h"
#include "rl/core/generalized.h"
#include "rl/tech/cell_library.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using core::DelayEncoding;
using core::GeneralizedGridCircuit;

namespace {

/** DNA cost matrix with match 1, mismatch/gap = ndr (race-ready). */
ScoreMatrix
matrixWithRange(bio::Score ndr)
{
    ScoreMatrix m(Alphabet::dna(), bio::ScoreKind::Cost);
    for (bio::Symbol s = 0; s < 4; ++s) {
        m.setGap(s, ndr);
        for (bio::Symbol t = 0; t < 4; ++t)
            m.setPair(s, t, s == t ? 1 : ndr);
    }
    return m;
}

} // namespace

int
main()
{
    const tech::CellLibrary &lib = tech::CellLibrary::amis();
    util::printBanner(std::cout,
                      "Section 5 ablation: per-cell hardware vs "
                      "dynamic range N_DR (DNA alphabet)");
    util::TextTable table({"N_DR", "one-hot DFFs", "binary DFFs",
                           "one-hot area um2", "binary area um2",
                           "binary wins"});
    for (bio::Score ndr : {2, 4, 8, 16, 32, 64}) {
        ScoreMatrix m = matrixWithRange(ndr);
        auto onehot =
            GeneralizedGridCircuit::cellInventory(m,
                                                  DelayEncoding::OneHot);
        auto binary =
            GeneralizedGridCircuit::cellInventory(m,
                                                  DelayEncoding::Binary);
        double area_oh = lib.areaOfInventory(onehot);
        double area_bin = lib.areaOfInventory(binary);
        table.row(ndr, onehot[size_t(circuit::GateType::Dff)],
                  binary[size_t(circuit::GateType::Dff)], area_oh,
                  area_bin, area_bin < area_oh ? "yes" : "no");
    }
    table.print(std::cout);
    std::cout
        << "(one-hot flip-flops grow linearly in N_DR; the binary\n"
           " counter grows logarithmically, paying a fixed comparator\n"
           " and set-on-arrival overhead -- it wins once N_DR is\n"
           " beyond a handful of cycles, which is why Fig. 8 uses it\n"
           " for BLOSUM-class matrices.)\n";

    util::printBanner(std::cout,
                      "Functional sanity: both encodings race the "
                      "same scores (3x3 fabric, N_DR = 8)");
    util::Rng rng(4);
    ScoreMatrix m = matrixWithRange(8);
    GeneralizedGridCircuit onehot(m, 3, 3, DelayEncoding::OneHot);
    GeneralizedGridCircuit binary(m, 3, 3, DelayEncoding::Binary);
    util::TextTable agree({"pair", "one-hot", "binary"});
    for (int trial = 0; trial < 4; ++trial) {
        auto a = bio::Sequence::random(rng, Alphabet::dna(), 3);
        auto b = bio::Sequence::random(rng, Alphabet::dna(), 3);
        agree.row(a.str() + "/" + b.str(), onehot.align(a, b).score,
                  binary.align(a, b).score);
    }
    agree.print(std::cout);
    return 0;
}
