/**
 * @file
 * Reproduces Figure 6: wavefront propagation maps for the worst case
 * (complete mismatch -- anti-diagonal front) and the best case
 * (identical strings -- diagonal-led front), plus per-cycle
 * wavefront occupancy, the quantity clock gating exploits.
 */

#include <iostream>

#include "rl/bio/sequence.h"
#include "rl/core/race_grid.h"
#include "rl/util/random.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

namespace {

void
show(const core::RaceGridResult &result, const char *title)
{
    util::printBanner(std::cout, title);
    std::cout << "arrival table:\n" << result.arrivalTable() << '\n';
    for (sim::Tick t :
         {sim::Tick(2), result.latencyCycles / 2,
          result.latencyCycles - 1}) {
        std::cout << "wavefront at cycle " << t
                  << " (# fired, o firing, . dark):\n"
                  << result.wavefrontPicture(t) << '\n';
    }
    util::TextTable occupancy({"cycle", "cells firing"});
    for (sim::Tick t = 0; t <= result.latencyCycles; ++t)
        occupancy.row(t, result.wavefrontSize(t));
    occupancy.print(std::cout);
}

} // namespace

int
main()
{
    util::Rng rng(6);
    const size_t n = 12;
    core::RaceGridAligner racer(
        ScoreMatrix::dnaShortestPathInfMismatch());

    auto [wa, wb] = bio::worstCasePair(rng, Alphabet::dna(), n);
    show(racer.align(wa, wb),
         "Fig. 6a: worst case (complete mismatch), N = 12");

    Sequence same = Sequence::random(rng, Alphabet::dna(), n);
    show(racer.align(same, same),
         "Fig. 6b: best case (identical strings), N = 12");
    return 0;
}
