/**
 * @file
 * Asynchronous (analog) Race Logic under device variation -- the
 * paper's Fig. 3d / discussion-section direction ("the most optimal
 * implementation of Race Logic is asynchronous and in the analog
 * domain", e.g. with memristive edge delays).
 *
 * The clockless energy win is already quantified in Fig. 5/9
 * benches; the open question is precision.  This bench Monte-Carlos
 * the analog race on edit graphs and random DAGs while sweeping the
 * per-edge delay variation sigma, reporting how often (a) the analog
 * winner is a true shortest path and (b) a time-to-digital readout
 * still reports the exact score.
 */

#include <iostream>

#include "rl/bio/edit_graph.h"
#include "rl/bio/score_matrix.h"
#include "rl/core/async_race.h"
#include "rl/graph/generate.h"
#include "rl/util/random.h"
#include "rl/util/strings.h"
#include "rl/util/table.h"

using namespace racelogic;
using bio::Alphabet;
using bio::ScoreMatrix;
using bio::Sequence;

namespace {

void
sweep(const graph::Dag &dag, const std::vector<graph::NodeId> &sources,
      graph::NodeId sink, const char *title, util::Rng &rng)
{
    util::printBanner(std::cout, title);
    util::TextTable table({"sigma", "decision correct", "readout exact",
                           "mean rel err", "max rel err"});
    const size_t trials = 200;
    for (double sigma : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3}) {
        core::AnalogDelayModel model{1.0, sigma};
        auto report = core::analyzeVariationRobustness(
            dag, sources, sink, model, trials, rng);
        table.row(sigma,
                  util::format("%.1f%%", 100.0 * report.decisionRate()),
                  util::format("%.1f%%", 100.0 * report.readoutRate()),
                  report.meanRelativeError, report.maxRelativeError);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    util::Rng rng(3031);

    // Edit graph of a realistic comparison: many near-optimal paths,
    // the adversarial case for analog precision.
    Sequence a = Sequence::random(rng, Alphabet::dna(), 16);
    Sequence b = mutate(rng, a, bio::MutationModel{0.15, 0.05, 0.05});
    bio::EditGraph eg =
        bio::makeEditGraph(a, b, ScoreMatrix::dnaShortestPath());
    sweep(eg.dag, {eg.source}, eg.sink,
          "Edit graph (N = 16, mutated pair): analog race vs device "
          "variation",
          rng);

    // A random DAG with a wider weight spread (more margin between
    // paths -> more robust decisions).
    graph::Dag random_dag = graph::randomDag(rng, 40, 0.15, {1, 8});
    auto [source, sink] = graph::addSuperEndpoints(random_dag, 1);
    sweep(random_dag, {source}, sink,
          "Random DAG (40 nodes, weights 1..8): analog race vs device "
          "variation",
          rng);

    std::cout
        << "\nReading: small sigma leaves decisions intact (the race\n"
           "picks a true shortest path) long before exact readouts\n"
           "survive -- the analog variant suits threshold screening\n"
           "(Section 6) better than exact scoring, while removing the\n"
           "clock network that dominates synchronous energy (Eq. 4).\n";
    return 0;
}
